//! Zero-cost-when-disabled observability for the Ditto simulator.
//!
//! Three views of a run, all optional and all inert unless switched on:
//!
//! * **Event tracing** ([`trace`]): begin/end/instant events for request
//!   lifecycles, RPC hops, syscalls, fault injections, network deliveries
//!   and fast-path engagements, exported as Chrome-trace/Perfetto JSON.
//! * **Time-series sampling** ([`series`]): periodic `PerfCounters`
//!   deltas, cache hit rates, run-/event-queue depths and per-service
//!   in-flight gauges in a columnar buffer with CSV/JSON export.
//! * **Pipeline self-profiling** ([`selfprof`]): host wall-time and
//!   allocation-estimate spans around the Ditto pipeline stages.
//!
//! # Determinism contract
//!
//! Observability must never perturb a simulation. The sink reads only the
//! simulated clock, draws no RNG values, schedules no events, and mutates
//! nothing the simulation reads — so `PerfCounters`, histograms and every
//! other measured output are byte-identical whether it is enabled or not
//! (proven by the `obs_differential` test). The disabled state is a
//! dataless enum variant: every probe method starts with an inlined
//! match that falls through immediately, keeping the execution fast path's
//! speedup intact.

pub mod selfprof;
pub mod series;
pub mod trace;

use std::sync::Arc;

use ditto_sim::time::{SimDuration, SimTime};
use parking_lot::Mutex;

use crate::selfprof::StageStat;
use crate::series::{ClusterSample, TimeSeries};
use crate::trace::{Ph, TraceBuffer, TraceEvent, SERVICE_TRACK_BASE};

/// What to record. The default records nothing and produces no report.
#[derive(Debug, Clone, Default)]
pub struct ObsConfig {
    /// Record trace events.
    pub tracing: bool,
    /// Sample the cluster every interval; `None` disables sampling.
    pub sample_every: Option<SimDuration>,
    /// Profile the pipeline stages (host wall time).
    pub self_profile: bool,
}

impl ObsConfig {
    /// Everything on, sampling at a 100 µs cadence.
    pub fn full() -> Self {
        ObsConfig {
            tracing: true,
            sample_every: Some(SimDuration::from_micros(100)),
            self_profile: true,
        }
    }

    /// Whether any collection is requested.
    pub fn enabled(&self) -> bool {
        self.tracing || self.sample_every.is_some() || self.self_profile
    }
}

/// Mutable recording state behind the sink's `Arc<Mutex<..>>`.
#[derive(Debug, Default)]
pub struct ObsInner {
    trace: TraceBuffer,
    series: TimeSeries,
    /// Sampling cadence in nanoseconds; 0 when sampling is off.
    sample_every_ns: u64,
    /// Next sample is due once sim time reaches this.
    next_sample_ns: u64,
    /// Current gauge values, indexed by gauge id.
    gauges: Vec<i64>,
    /// Interned `(node, service)` pairs; a service's worker-track block
    /// starts at `SERVICE_TRACK_BASE + index * WORKER_TRACK_STRIDE`.
    /// Populated at deploy time (single-threaded), so intern indices —
    /// and therefore every worker tid — are identical whichever executor
    /// later runs the cluster.
    service_tracks: Vec<(u32, String)>,
}

/// The observability sink threaded through the cluster and services.
///
/// Cloning is cheap (an `Arc` clone); all clones record into the same
/// buffers. The `Disabled` variant is dataless and every probe method is
/// an inlined early return on it.
#[derive(Clone, Default)]
pub enum ObsSink {
    /// Record nothing. All probe methods are no-ops.
    #[default]
    Disabled,
    /// Record into shared buffers. The per-kind flags are copied out of
    /// the mutex so probes can bail without locking.
    Recording {
        /// Shared recording state.
        inner: Arc<Mutex<ObsInner>>,
        /// Whether trace events are recorded.
        tracing: bool,
        /// Whether periodic sampling is on.
        sampling: bool,
    },
}

impl std::fmt::Debug for ObsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsSink::Disabled => f.write_str("ObsSink::Disabled"),
            ObsSink::Recording { tracing, sampling, .. } => f
                .debug_struct("ObsSink::Recording")
                .field("tracing", tracing)
                .field("sampling", sampling)
                .finish(),
        }
    }
}

impl ObsSink {
    /// Builds a sink from a config; a fully-off config yields `Disabled`.
    pub fn new(cfg: &ObsConfig) -> Self {
        if !cfg.enabled() {
            return ObsSink::Disabled;
        }
        let every = cfg.sample_every.map_or(0, |d| d.as_nanos());
        let inner = ObsInner { sample_every_ns: every, ..ObsInner::default() };
        ObsSink::Recording {
            inner: Arc::new(Mutex::new(inner)),
            tracing: cfg.tracing,
            sampling: every > 0,
        }
    }

    /// Whether this sink records anything at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        !matches!(self, ObsSink::Disabled)
    }

    /// Whether trace events are being recorded.
    #[inline]
    pub fn tracing(&self) -> bool {
        matches!(self, ObsSink::Recording { tracing: true, .. })
    }

    /// Whether periodic sampling is on.
    #[inline]
    pub fn sampling(&self) -> bool {
        matches!(self, ObsSink::Recording { sampling: true, .. })
    }

    fn push(&self, ts: SimTime, pid: u32, tid: u32, ph: Ph, cat: &'static str, name: String) {
        if let ObsSink::Recording { inner, tracing: true, .. } = self {
            inner.lock().trace.push(TraceEvent {
                ts_ns: ts.as_nanos(),
                pid,
                tid,
                ph,
                cat,
                name,
                args: Vec::new(),
            });
        }
    }

    /// Records a span begin on `(pid, tid)`.
    #[inline]
    pub fn begin(&self, ts: SimTime, pid: u32, tid: u32, cat: &'static str, name: &str) {
        if self.tracing() {
            self.push(ts, pid, tid, Ph::Begin, cat, name.to_string());
        }
    }

    /// Records a span end on `(pid, tid)`.
    #[inline]
    pub fn end(&self, ts: SimTime, pid: u32, tid: u32) {
        if self.tracing() {
            self.push(ts, pid, tid, Ph::End, "", String::new());
        }
    }

    /// Records an instant event on `(pid, tid)`.
    #[inline]
    pub fn instant(&self, ts: SimTime, pid: u32, tid: u32, cat: &'static str, name: &str) {
        if self.tracing() {
            self.push(ts, pid, tid, Ph::Instant, cat, name.to_string());
        }
    }

    /// Interns `service` on node `pid` and returns its base (worker 0)
    /// track id. Returns 0 when tracing is off.
    pub fn service_track(&self, pid: u32, service: &str) -> u32 {
        self.worker_track(pid, service, 0)
    }

    /// The track id for worker `index` of `service` on node `pid`:
    /// `base + index mod WORKER_TRACK_STRIDE`, where `base` comes from
    /// the service's intern index. Call at deploy time at least once per
    /// `(pid, service)` (e.g. via [`ServiceObs::for_service`]) so the
    /// intern table is complete before the simulation runs; later calls
    /// only look the index up, keeping tids executor-independent.
    /// Returns 0 when tracing is off.
    pub fn worker_track(&self, pid: u32, service: &str, index: usize) -> u32 {
        let ObsSink::Recording { inner, tracing: true, .. } = self else { return 0 };
        let mut inner = inner.lock();
        let idx = match inner
            .service_tracks
            .iter()
            .position(|(p, s)| *p == pid && s == service)
        {
            Some(i) => i,
            None => {
                inner.service_tracks.push((pid, service.to_string()));
                inner.service_tracks.len() - 1
            }
        };
        let lane = (index as u32) % trace::WORKER_TRACK_STRIDE;
        let tid = SERVICE_TRACK_BASE + (idx as u32) * trace::WORKER_TRACK_STRIDE + lane;
        inner.trace.name_track(pid, tid, format!("{service}#{lane}"));
        tid
    }

    /// Registers a sampled gauge, returning its id. Returns 0 when
    /// sampling is off (gauge updates are then no-ops anyway).
    pub fn gauge(&self, name: &str) -> u32 {
        let ObsSink::Recording { inner, sampling: true, .. } = self else { return 0 };
        let mut inner = inner.lock();
        let id = inner.series.add_gauge(name.to_string());
        inner.gauges.push(0);
        id
    }

    /// Adds `delta` to a gauge's current value.
    #[inline]
    pub fn gauge_add(&self, id: u32, delta: i64) {
        if let ObsSink::Recording { inner, sampling: true, .. } = self {
            let mut inner = inner.lock();
            if let Some(g) = inner.gauges.get_mut(id as usize) {
                *g += delta;
            }
        }
    }

    /// Whether a periodic sample is due at `now`.
    #[inline]
    pub fn sample_due(&self, now: SimTime) -> bool {
        match self {
            ObsSink::Recording { inner, sampling: true, .. } => {
                now.as_nanos() >= inner.lock().next_sample_ns
            }
            _ => false,
        }
    }

    /// Appends a sample at `now` and advances the cadence cursor past it.
    pub fn push_sample(&self, now: SimTime, sample: &ClusterSample) {
        let ObsSink::Recording { inner, sampling: true, .. } = self else { return };
        let mut inner = inner.lock();
        let gauges = std::mem::take(&mut inner.gauges);
        inner.series.push_sample(now.as_nanos(), sample, &gauges);
        inner.gauges = gauges;
        let every = inner.sample_every_ns;
        inner.next_sample_ns = (now.as_nanos() / every + 1) * every;
    }

    /// Extracts the recorded report; `None` for a disabled sink. The
    /// pipeline-stage stats are filled in by the harness (they live in
    /// thread-local state, not in the sink).
    pub fn finish(&self) -> Option<ObsReport> {
        match self {
            ObsSink::Disabled => None,
            ObsSink::Recording { inner, .. } => {
                let mut inner = inner.lock();
                Some(ObsReport {
                    trace: std::mem::take(&mut inner.trace),
                    series: std::mem::take(&mut inner.series),
                    stages: Vec::new(),
                })
            }
        }
    }
}

/// Everything one run recorded.
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// The event trace (export with [`TraceBuffer::to_chrome_json`]).
    pub trace: TraceBuffer,
    /// The sampled time series.
    pub series: TimeSeries,
    /// Pipeline-stage self-profile.
    pub stages: Vec<StageStat>,
}

/// Per-service probe handle the application layer threads through its
/// workers: request/RPC span recording on a per-worker track plus an
/// in-flight gauge. Built from the cluster's sink at deploy time; when
/// the sink is disabled every method is a no-op.
#[derive(Clone)]
pub struct ServiceObs {
    sink: ObsSink,
    /// Node the service runs on (trace `pid`).
    pid: u32,
    service: Arc<str>,
    track: u32,
    gauge: Option<u32>,
}

impl std::fmt::Debug for ServiceObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceObs")
            .field("service", &self.service)
            .field("enabled", &self.sink.enabled())
            .finish()
    }
}

impl ServiceObs {
    /// A permanently-disabled handle.
    pub fn disabled() -> Self {
        ServiceObs {
            sink: ObsSink::Disabled,
            pid: 0,
            service: Arc::from(""),
            track: 0,
            gauge: None,
        }
    }

    /// Builds the handle for `service` on `node` (worker 0's track).
    pub fn for_service(sink: &ObsSink, node: u32, service: &str) -> Self {
        if !sink.enabled() {
            return Self::disabled();
        }
        let gauge =
            sink.sampling().then(|| sink.gauge(&format!("{service}.inflight")));
        let track = sink.service_track(node, service);
        ServiceObs { sink: sink.clone(), pid: node, service: Arc::from(service), track, gauge }
    }

    /// The handle for worker `index` — its own track (so concurrent
    /// requests on different workers nest correctly), same gauge. The
    /// track id is arithmetic on the service's deploy-time base, so
    /// workers spawned at runtime (thread-per-connection acceptors) get
    /// the same tid under any executor.
    pub fn worker(&self, index: usize) -> Self {
        if !self.sink.enabled() || index == 0 {
            return self.clone();
        }
        let track = self.sink.worker_track(self.pid, &self.service, index);
        ServiceObs { track, ..self.clone() }
    }

    /// Marks the start of handling one request.
    #[inline]
    pub fn request_begin(&self, now: SimTime) {
        if let Some(g) = self.gauge {
            self.sink.gauge_add(g, 1);
        }
        self.sink.begin(now, self.pid, self.track, "request", "handle");
    }

    /// Marks the end of handling one request.
    #[inline]
    pub fn request_end(&self, now: SimTime) {
        if let Some(g) = self.gauge {
            self.sink.gauge_add(g, -1);
        }
        self.sink.end(now, self.pid, self.track);
    }

    /// Marks the start of a downstream RPC (covering retries).
    #[inline]
    pub fn rpc_begin(&self, now: SimTime) {
        self.sink.begin(now, self.pid, self.track, "rpc", "rpc");
    }

    /// Marks the end of a downstream RPC (reply received or given up).
    #[inline]
    pub fn rpc_end(&self, now: SimTime) {
        self.sink.end(now, self.pid, self.track);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing_and_reports_none() {
        let sink = ObsSink::new(&ObsConfig::default());
        assert!(!sink.enabled() && !sink.tracing() && !sink.sampling());
        sink.begin(SimTime::from_nanos(1), 0, 0, "sched", "x");
        sink.end(SimTime::from_nanos(2), 0, 0);
        assert!(!sink.sample_due(SimTime::from_nanos(1_000_000)));
        assert!(sink.finish().is_none());
    }

    #[test]
    fn recording_sink_captures_spans_and_samples() {
        let cfg = ObsConfig {
            tracing: true,
            sample_every: Some(SimDuration::from_micros(1)),
            self_profile: false,
        };
        let sink = ObsSink::new(&cfg);
        assert!(sink.tracing() && sink.sampling());
        sink.begin(SimTime::from_nanos(10), 0, 0, "sched", "worker");
        sink.end(SimTime::from_nanos(20), 0, 0);
        assert!(sink.sample_due(SimTime::from_nanos(0)));
        sink.push_sample(
            SimTime::from_nanos(100),
            &ClusterSample {
                nodes: vec![],
                event_queue_depth: 0,
                event_pushes: 0,
                event_pops: 0,
                net_msgs: 0,
                net_bytes: 0,
            },
        );
        assert!(!sink.sample_due(SimTime::from_nanos(150)), "cadence advanced to next µs");
        assert!(sink.sample_due(SimTime::from_nanos(1_000)));
        let report = sink.finish().expect("recording sink reports");
        assert_eq!(report.trace.len(), 2);
    }

    #[test]
    fn service_obs_tracks_are_per_worker() {
        let cfg = ObsConfig { tracing: true, ..ObsConfig::default() };
        let sink = ObsSink::new(&cfg);
        let base = ServiceObs::for_service(&sink, 2, "text");
        let w1 = base.worker(1);
        assert_ne!(base.track, w1.track);
        assert_eq!(base.worker(0).track, base.track);
        base.request_begin(SimTime::from_nanos(5));
        w1.request_begin(SimTime::from_nanos(6));
        w1.request_end(SimTime::from_nanos(7));
        base.request_end(SimTime::from_nanos(8));
        let report = sink.finish().expect("report");
        let json = report.trace.to_chrome_json();
        trace::validate_chrome_trace(&json).expect("balanced per-worker tracks");
    }
}
