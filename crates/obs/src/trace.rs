//! Structured event tracing with a Chrome-trace/Perfetto JSON exporter.
//!
//! Events are begin/end span pairs and instants, keyed by simulated time
//! and a `(pid, tid)` track: `pid` is the cluster node, `tid` the track
//! within it — logical CPUs use their index, service request tracks start
//! at [`SERVICE_TRACK_BASE`], and network/fault instants land on dedicated
//! tracks. The exporter emits the Chrome trace-event JSON format, so a run
//! can be opened directly in `chrome://tracing` or the Perfetto UI.

use serde::{Serialize, Value};

/// First track id used for per-service request tracks (below this the tid
/// is a logical CPU index).
pub const SERVICE_TRACK_BASE: u32 = 1_000;
/// Track ids per interned service: a service's workers occupy the block
/// `[base, base + stride)`, so a worker's tid is pure arithmetic on the
/// service's deploy-time intern index and never depends on the runtime
/// order in which workers first record (which the parallel engine does
/// not determinise).
pub const WORKER_TRACK_STRIDE: u32 = 4_096;
/// Track for network delivery instants.
pub const NET_TRACK: u32 = 2_000_000_000;
/// Track for fault-injection instants.
pub const FAULT_TRACK: u32 = 2_000_000_100;

/// Event phase, mirroring the Chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ph {
    /// Span begin (`B`).
    Begin,
    /// Span end (`E`).
    End,
    /// Instant (`i`).
    Instant,
}

/// A value carried in an event's `args` object. The Chrome format's
/// free-form `args` is the only channel that survives export, so anything
/// ingestion needs back — span identity, status, service names — rides
/// here. Integers stay `u64` end to end (the JSON layer prints and
/// re-parses them exactly), never `f64`, so 64-bit span ids round-trip
/// without mantissa loss.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer (exact through JSON).
    U64(u64),
    /// A string.
    Str(String),
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Simulated timestamp in nanoseconds.
    pub ts_ns: u64,
    /// Node index (exported as the Chrome `pid`).
    pub pid: u32,
    /// Track within the node (exported as the Chrome `tid`).
    pub tid: u32,
    /// Phase.
    pub ph: Ph,
    /// Category (static so recording never allocates for it).
    pub cat: &'static str,
    /// Event name. `End` events carry an empty name; the viewer closes
    /// the innermost open span on the track.
    pub name: String,
    /// Structured payload exported as the Chrome `args` object (empty for
    /// events with nothing to carry — the common case; the exporter then
    /// omits the field entirely, keeping the old wire shape).
    pub args: Vec<(&'static str, ArgValue)>,
}

/// An append-only buffer of trace events plus track-name metadata.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    /// `(pid, tid) → human-readable track name` for exported metadata.
    track_names: Vec<((u32, u32), String)>,
}

impl TraceBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Registers a display name for a `(pid, tid)` track.
    pub fn name_track(&mut self, pid: u32, tid: u32, name: String) {
        if !self.track_names.iter().any(|((p, t), _)| (*p, *t) == (pid, tid)) {
            self.track_names.push(((pid, tid), name));
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Recorded events, in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    fn track_name(&self, pid: u32, tid: u32) -> String {
        if let Some((_, n)) = self.track_names.iter().find(|((p, t), _)| (*p, *t) == (pid, tid)) {
            return n.clone();
        }
        match tid {
            NET_TRACK => "net".to_string(),
            FAULT_TRACK => "faults".to_string(),
            t if t < SERVICE_TRACK_BASE => format!("cpu{t}"),
            t => format!("track{t}"),
        }
    }

    /// Renders the buffer as Chrome trace-event JSON (`{"traceEvents":
    /// [...]}`), suitable for `chrome://tracing` or the Perfetto UI.
    ///
    /// Events are sorted by `(timestamp, node)` — stably, so same-instant
    /// events on one node keep recording order — and any span still open
    /// at the end of the run is closed at the final timestamp,
    /// guaranteeing balanced begin/end pairs on every track. The node in
    /// the sort key matters for the parallel engine: each logical process
    /// appends its own events in a deterministic order, but the
    /// interleaving *between* nodes inside a window depends on worker
    /// scheduling, so the export order must not inherit it.
    pub fn to_chrome_json(&self) -> String {
        let mut sorted: Vec<&TraceEvent> = self.events.iter().collect();
        sorted.sort_by_key(|e| (e.ts_ns, e.pid));
        let max_ts = sorted.last().map_or(0, |e| e.ts_ns);

        let mut out: Vec<Value> = Vec::new();
        // Track/process name metadata first.
        let mut seen_pids: Vec<u32> = Vec::new();
        let mut seen_tracks: Vec<(u32, u32)> = Vec::new();
        for e in &sorted {
            if !seen_pids.contains(&e.pid) {
                seen_pids.push(e.pid);
                out.push(meta_event("process_name", e.pid, 0, format!("node{}", e.pid)));
            }
            if !seen_tracks.contains(&(e.pid, e.tid)) {
                seen_tracks.push((e.pid, e.tid));
                out.push(meta_event("thread_name", e.pid, e.tid, self.track_name(e.pid, e.tid)));
            }
        }

        // Depth per track so dangling spans can be closed at the end.
        let mut depth: Vec<((u32, u32), i64)> = Vec::new();
        for e in &sorted {
            let d = match depth.iter_mut().find(|(k, _)| *k == (e.pid, e.tid)) {
                Some((_, d)) => d,
                None => {
                    depth.push(((e.pid, e.tid), 0));
                    &mut depth.last_mut().expect("just pushed").1
                }
            };
            match e.ph {
                Ph::Begin => *d += 1,
                Ph::End => *d -= 1,
                Ph::Instant => {}
            }
            out.push(emit_event(e));
        }
        for ((pid, tid), d) in depth {
            for _ in 0..d.max(0) {
                out.push(emit_event(&TraceEvent {
                    ts_ns: max_ts,
                    pid,
                    tid,
                    ph: Ph::End,
                    cat: "sched",
                    name: String::new(),
                    args: Vec::new(),
                }));
            }
        }

        let doc = Value::Obj(vec![("traceEvents".to_string(), Value::Arr(out))]);
        serde_json::to_string(&Raw(doc)).expect("trace JSON rendering is infallible")
    }
}

/// Serializes an already-built [`Value`] tree verbatim.
struct Raw(Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

fn ts_us(ns: u64) -> Value {
    Value::F64(ns as f64 / 1000.0)
}

fn meta_event(kind: &str, pid: u32, tid: u32, name: String) -> Value {
    Value::Obj(vec![
        ("name".to_string(), Value::Str(kind.to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::U64(u64::from(pid))),
        ("tid".to_string(), Value::U64(u64::from(tid))),
        ("args".to_string(), Value::Obj(vec![("name".to_string(), Value::Str(name))])),
    ])
}

fn emit_event(e: &TraceEvent) -> Value {
    let ph = match e.ph {
        Ph::Begin => "B",
        Ph::End => "E",
        Ph::Instant => "i",
    };
    let mut fields = vec![
        ("name".to_string(), Value::Str(e.name.clone())),
        ("cat".to_string(), Value::Str(e.cat.to_string())),
        ("ph".to_string(), Value::Str(ph.to_string())),
        ("ts".to_string(), ts_us(e.ts_ns)),
        ("pid".to_string(), Value::U64(u64::from(e.pid))),
        ("tid".to_string(), Value::U64(u64::from(e.tid))),
    ];
    if e.ph == Ph::Instant {
        fields.push(("s".to_string(), Value::Str("t".to_string())));
    }
    if !e.args.is_empty() {
        let args = e
            .args
            .iter()
            .map(|(k, v)| {
                let val = match v {
                    ArgValue::U64(n) => Value::U64(*n),
                    ArgValue::Str(s) => Value::Str(s.clone()),
                };
                (k.to_string(), val)
            })
            .collect();
        fields.push(("args".to_string(), Value::Obj(args)));
    }
    Value::Obj(fields)
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total non-metadata events.
    pub events: usize,
    /// Span begins.
    pub begins: usize,
    /// Span ends.
    pub ends: usize,
    /// Instants.
    pub instants: usize,
}

/// Parses a value as an opaque tree (the shim's `Value` has no blanket
/// `Deserialize` impl of its own).
struct RawVal(Value);

impl serde::Deserialize for RawVal {
    fn from_value(v: &Value) -> Result<Self, serde::DeError> {
        Ok(RawVal(v.clone()))
    }
}

/// Validates `json` against the trace-event schema expectations this crate
/// guarantees: a non-empty `traceEvents` array, required keys on every
/// event, globally monotone timestamps (metadata aside), and balanced
/// begin/end pairs on every `(pid, tid)` track.
pub fn validate_chrome_trace(json: &str) -> Result<TraceStats, String> {
    let RawVal(doc) = serde_json::from_str(json).map_err(|e| e.to_string())?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;

    let mut stats = TraceStats { events: 0, begins: 0, ends: 0, instants: 0 };
    let mut last_ts = f64::NEG_INFINITY;
    let mut depth: Vec<((u64, u64), i64)> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let pid = match ev.get("pid") {
            Some(Value::U64(p)) => *p,
            _ => return Err(format!("event {i}: missing pid")),
        };
        let tid = match ev.get("tid") {
            Some(Value::U64(t)) => *t,
            _ => return Err(format!("event {i}: missing tid")),
        };
        if ev.get("name").and_then(Value::as_str).is_none() {
            return Err(format!("event {i}: missing name"));
        }
        if ph == "M" {
            continue;
        }
        let ts = match ev.get("ts") {
            Some(Value::F64(t)) => *t,
            Some(Value::U64(t)) => *t as f64,
            _ => return Err(format!("event {i}: missing ts")),
        };
        if ts < last_ts {
            return Err(format!("event {i}: timestamp {ts} decreases below {last_ts}"));
        }
        last_ts = ts;
        stats.events += 1;
        let d = match depth.iter_mut().find(|(k, _)| *k == (pid, tid)) {
            Some((_, d)) => d,
            None => {
                depth.push(((pid, tid), 0));
                &mut depth.last_mut().expect("just pushed").1
            }
        };
        match ph {
            "B" => {
                stats.begins += 1;
                *d += 1;
            }
            "E" => {
                stats.ends += 1;
                *d -= 1;
                if *d < 0 {
                    return Err(format!("event {i}: end without begin on track ({pid},{tid})"));
                }
            }
            "i" | "I" => stats.instants += 1,
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }
    if stats.events == 0 {
        return Err("trace has no events".to_string());
    }
    for ((pid, tid), d) in depth {
        if d != 0 {
            return Err(format!("track ({pid},{tid}) left {d} spans open"));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: u64, tid: u32, ph: Ph, name: &str) -> TraceEvent {
        TraceEvent {
            ts_ns,
            pid: 0,
            tid,
            ph,
            cat: "test",
            name: name.to_string(),
            args: Vec::new(),
        }
    }

    #[test]
    fn export_validates_and_counts_events() {
        let mut buf = TraceBuffer::new();
        buf.push(ev(100, 0, Ph::Begin, "slice"));
        buf.push(ev(150, 0, Ph::Instant, "syscall"));
        buf.push(ev(300, 0, Ph::End, ""));
        buf.push(ev(200, 1, Ph::Begin, "slice"));
        buf.push(ev(250, 1, Ph::End, ""));
        let json = buf.to_chrome_json();
        let stats = validate_chrome_trace(&json).expect("valid");
        assert_eq!(stats.events, 5);
        assert_eq!(stats.begins, 2);
        assert_eq!(stats.ends, 2);
        assert_eq!(stats.instants, 1);
    }

    #[test]
    fn dangling_spans_are_closed_at_export() {
        let mut buf = TraceBuffer::new();
        buf.push(ev(100, 3, Ph::Begin, "request"));
        buf.push(ev(120, 3, Ph::Begin, "rpc"));
        buf.push(ev(180, 3, Ph::End, ""));
        // The outer request span is never closed (e.g. in flight at the
        // end of the window); export must balance it.
        let stats = validate_chrome_trace(&buf.to_chrome_json()).expect("valid");
        assert_eq!(stats.begins, stats.ends);
    }

    #[test]
    fn out_of_order_recording_exports_monotone() {
        let mut buf = TraceBuffer::new();
        // Two overlapping slices on different tracks are recorded in
        // completion order, not timestamp order.
        buf.push(ev(100, 0, Ph::Begin, "a"));
        buf.push(ev(500, 0, Ph::End, ""));
        buf.push(ev(120, 1, Ph::Begin, "b"));
        buf.push(ev(140, 1, Ph::End, ""));
        validate_chrome_trace(&buf.to_chrome_json()).expect("sorted on export");
    }

    #[test]
    fn args_survive_export_exactly() {
        let mut buf = TraceBuffer::new();
        let mut begin = ev(10, 0, Ph::Begin, "handle");
        // A 64-bit id above 2^53: must survive as an exact integer, not a
        // lossy double.
        begin.args = vec![
            ("span_id", ArgValue::U64(0xDEAD_BEEF_0000_0001)),
            ("service", ArgValue::Str("frontend".to_string())),
        ];
        buf.push(begin);
        buf.push(ev(20, 0, Ph::End, ""));
        let json = buf.to_chrome_json();
        validate_chrome_trace(&json).expect("args do not break validation");
        assert!(json.contains(&0xDEAD_BEEF_0000_0001u64.to_string()), "{json}");
        assert!(json.contains("\"service\":\"frontend\""), "{json}");
    }

    #[test]
    fn validator_rejects_bad_traces() {
        assert!(validate_chrome_trace("{\"traceEvents\":[]}").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
        // Unbalanced end.
        let bad = r#"{"traceEvents":[{"name":"x","ph":"E","ts":1.0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Decreasing timestamps.
        let bad = r#"{"traceEvents":[
            {"name":"x","ph":"i","ts":5.0,"pid":0,"tid":0},
            {"name":"y","ph":"i","ts":1.0,"pid":0,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
    }
}
