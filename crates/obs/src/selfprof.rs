//! Pipeline self-profiler: wall-time and allocation-estimate spans around
//! the Ditto stages (trace extraction, skeleton, profiling, codegen,
//! tuning).
//!
//! This measures the *host* cost of running the pipeline, so it uses
//! `std::time::Instant` — never the simulated clock — and touches nothing
//! the simulation reads. Collection is thread-local and off by default;
//! when disabled, [`span`] returns an inert guard and records nothing, so
//! instrumented call sites cost one thread-local boolean read.

use std::cell::RefCell;
use std::time::Instant;

/// Accumulated statistics for one named stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStat {
    /// Stage name (e.g. `codegen`).
    pub name: &'static str,
    /// Times the stage ran.
    pub calls: u64,
    /// Total wall time across calls, in nanoseconds.
    pub wall_ns: u128,
    /// Bytes the stage reported via [`note_alloc`] (an estimate of its
    /// dominant allocations, not a heap measurement).
    pub alloc_bytes: u64,
}

#[derive(Default)]
struct ProfState {
    enabled: bool,
    stages: Vec<StageStat>,
    /// Names of currently open spans, innermost last; [`note_alloc`]
    /// attributes to the innermost.
    open: Vec<&'static str>,
}

thread_local! {
    static PROF: RefCell<ProfState> = RefCell::new(ProfState::default());
}

/// Turns collection on or off for the current thread.
pub fn set_enabled(on: bool) {
    PROF.with(|p| p.borrow_mut().enabled = on);
}

/// An RAII span guard; the stage's wall time is recorded when it drops.
#[must_use = "a span measures until dropped"]
pub struct SpanGuard {
    start: Option<(&'static str, Instant)>,
}

/// Opens a span for `name`. Inert (and nearly free) while disabled.
pub fn span(name: &'static str) -> SpanGuard {
    let active = PROF.with(|p| {
        let mut p = p.borrow_mut();
        if p.enabled {
            p.open.push(name);
            true
        } else {
            false
        }
    });
    SpanGuard { start: active.then(|| (name, Instant::now())) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((name, start)) = self.start.take() else { return };
        let wall = start.elapsed().as_nanos();
        PROF.with(|p| {
            let mut p = p.borrow_mut();
            if let Some(i) = p.open.iter().rposition(|n| *n == name) {
                p.open.remove(i);
            }
            let s = stage_mut(&mut p.stages, name);
            s.calls += 1;
            s.wall_ns += wall;
        });
    }
}

fn stage_mut<'a>(stages: &'a mut Vec<StageStat>, name: &'static str) -> &'a mut StageStat {
    if let Some(i) = stages.iter().position(|s| s.name == name) {
        return &mut stages[i];
    }
    stages.push(StageStat { name, calls: 0, wall_ns: 0, alloc_bytes: 0 });
    stages.last_mut().expect("just pushed")
}

/// Attributes `bytes` of allocation estimate to the innermost open span.
/// No-op when disabled or outside any span.
pub fn note_alloc(bytes: u64) {
    PROF.with(|p| {
        let mut p = p.borrow_mut();
        if !p.enabled {
            return;
        }
        let Some(&name) = p.open.last() else { return };
        stage_mut(&mut p.stages, name).alloc_bytes += bytes;
    });
}

/// Drains and returns the completed stage statistics for this thread.
pub fn take_report() -> Vec<StageStat> {
    PROF.with(|p| std::mem::take(&mut p.borrow_mut().stages))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_only_while_enabled() {
        let _ = take_report();
        {
            let _g = span("off");
        }
        assert!(take_report().is_empty(), "disabled spans record nothing");

        set_enabled(true);
        {
            let _g = span("codegen");
            note_alloc(4096);
            {
                let _inner = span("codegen");
            }
        }
        set_enabled(false);
        let report = take_report();
        assert_eq!(report.len(), 1);
        assert_eq!(report[0].name, "codegen");
        assert_eq!(report[0].calls, 2);
        assert_eq!(report[0].alloc_bytes, 4096);
        assert!(take_report().is_empty(), "take drains");
    }

    #[test]
    fn alloc_attributes_to_innermost_span() {
        let _ = take_report();
        set_enabled(true);
        {
            let _outer = span("skeleton");
            let _inner = span("codegen");
            note_alloc(100);
        }
        set_enabled(false);
        let report = take_report();
        let by = |n: &str| report.iter().find(|s| s.name == n).cloned();
        assert_eq!(by("codegen").map(|s| s.alloc_bytes), Some(100));
        assert_eq!(by("skeleton").map(|s| s.alloc_bytes), Some(0));
    }
}
