//! Columnar time-series buffer for periodic cluster samples.
//!
//! Each sample records, per node, the `PerfCounters` delta since the
//! previous sample (plus derived IPC and cache hit rates) and the
//! scheduler run-queue depth; cluster-wide columns capture event-queue
//! depth/throughput and network delivery counters, and gauge columns track
//! per-service in-flight request counts. Storage is struct-of-arrays so a
//! long run stays compact, with CSV and JSON export.

use ditto_hw::counters::PerfCounters;
use serde::{Serialize, Value};

/// Per-node input to one sample.
#[derive(Debug, Clone)]
pub struct NodeSample {
    /// Node index.
    pub node: u32,
    /// Cumulative counters (the series stores deltas).
    pub counters: PerfCounters,
    /// Run-queue depth at the sample instant.
    pub run_queue: usize,
}

/// Cluster-wide input to one sample.
#[derive(Debug, Clone)]
pub struct ClusterSample {
    /// Per-node snapshots.
    pub nodes: Vec<NodeSample>,
    /// Pending events in the global queue.
    pub event_queue_depth: usize,
    /// Cumulative event-queue pushes.
    pub event_pushes: u64,
    /// Cumulative event-queue pops.
    pub event_pops: u64,
    /// Cumulative messages delivered by the fabric.
    pub net_msgs: u64,
    /// Cumulative bytes delivered by the fabric.
    pub net_bytes: u64,
}

/// The columnar buffer. One row per `(sample, node)` pair; cluster-wide
/// columns repeat on every node row of the same sample, and gauge rows
/// live in their own table.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    t_ns: Vec<u64>,
    node: Vec<u32>,
    instructions: Vec<u64>,
    cycles: Vec<u64>,
    ipc: Vec<f64>,
    l1d_hit_rate: Vec<f64>,
    llc_hit_rate: Vec<f64>,
    run_queue: Vec<u32>,
    event_queue_depth: Vec<u32>,
    event_pushes: Vec<u64>,
    event_pops: Vec<u64>,
    net_msgs: Vec<u64>,
    net_bytes: Vec<u64>,
    /// Gauge table: `(t_ns, gauge index, value)`.
    gauge_t_ns: Vec<u64>,
    gauge_id: Vec<u32>,
    gauge_value: Vec<i64>,
    /// Gauge display names, indexed by gauge id.
    gauge_names: Vec<String>,
    /// Last cumulative counters per node, for delta computation.
    last: Vec<Option<PerfCounters>>,
}

fn hit_rate(accesses: u64, misses: u64) -> f64 {
    if accesses == 0 {
        1.0
    } else {
        1.0 - misses as f64 / accesses as f64
    }
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a gauge, returning its id.
    pub fn add_gauge(&mut self, name: String) -> u32 {
        self.gauge_names.push(name);
        (self.gauge_names.len() - 1) as u32
    }

    /// Appends one sample taken at `t_ns`, with current gauge values.
    pub fn push_sample(&mut self, t_ns: u64, s: &ClusterSample, gauges: &[i64]) {
        for n in &s.nodes {
            let ni = n.node as usize;
            if self.last.len() <= ni {
                self.last.resize(ni + 1, None);
            }
            let prev = self.last[ni].unwrap_or_default();
            // Measurement windows zero the machine counters mid-run
            // (`MetricSet::begin`); a cumulative value going backwards
            // marks such a reset, and the post-reset value is the delta.
            let reset = n.counters.cycles < prev.cycles
                || n.counters.instructions < prev.instructions;
            let d = if reset { n.counters } else { n.counters - prev };
            self.last[ni] = Some(n.counters);
            self.t_ns.push(t_ns);
            self.node.push(n.node);
            self.instructions.push(d.instructions);
            self.cycles.push(d.cycles);
            self.ipc.push(d.ipc());
            self.l1d_hit_rate.push(hit_rate(d.l1d_accesses, d.l1d_misses));
            self.llc_hit_rate.push(hit_rate(d.llc_accesses, d.llc_misses));
            self.run_queue.push(n.run_queue as u32);
            self.event_queue_depth.push(s.event_queue_depth as u32);
            self.event_pushes.push(s.event_pushes);
            self.event_pops.push(s.event_pops);
            self.net_msgs.push(s.net_msgs);
            self.net_bytes.push(s.net_bytes);
        }
        for (id, &v) in gauges.iter().enumerate() {
            self.gauge_t_ns.push(t_ns);
            self.gauge_id.push(id as u32);
            self.gauge_value.push(v);
        }
    }

    /// Number of `(sample, node)` rows.
    pub fn len(&self) -> usize {
        self.t_ns.len()
    }

    /// Whether no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.t_ns.is_empty()
    }

    /// The sampled timestamps (one entry per node row).
    pub fn timestamps(&self) -> &[u64] {
        &self.t_ns
    }

    /// Gauge rows as `(t_ns, name, value)` tuples.
    pub fn gauge_rows(&self) -> impl Iterator<Item = (u64, &str, i64)> + '_ {
        self.gauge_t_ns
            .iter()
            .zip(&self.gauge_id)
            .zip(&self.gauge_value)
            .map(|((&t, &id), &v)| (t, self.gauge_names[id as usize].as_str(), v))
    }

    /// Renders the node-row table as CSV (header + one line per row).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "t_ns,node,instructions,cycles,ipc,l1d_hit_rate,llc_hit_rate,run_queue,\
             event_queue_depth,event_pushes,event_pops,net_msgs,net_bytes\n",
        );
        for i in 0..self.len() {
            out.push_str(&format!(
                "{},{},{},{},{:.4},{:.4},{:.4},{},{},{},{},{},{}\n",
                self.t_ns[i],
                self.node[i],
                self.instructions[i],
                self.cycles[i],
                self.ipc[i],
                self.l1d_hit_rate[i],
                self.llc_hit_rate[i],
                self.run_queue[i],
                self.event_queue_depth[i],
                self.event_pushes[i],
                self.event_pops[i],
                self.net_msgs[i],
                self.net_bytes[i],
            ));
        }
        out
    }

    /// Renders both tables as a JSON document.
    pub fn to_json(&self) -> String {
        fn col_u64(v: &[u64]) -> Value {
            Value::Arr(v.iter().map(|&x| Value::U64(x)).collect())
        }
        fn col_u32(v: &[u32]) -> Value {
            Value::Arr(v.iter().map(|&x| Value::U64(u64::from(x))).collect())
        }
        fn col_f64(v: &[f64]) -> Value {
            Value::Arr(v.iter().map(|&x| Value::F64(x)).collect())
        }
        let nodes = Value::Obj(vec![
            ("t_ns".to_string(), col_u64(&self.t_ns)),
            ("node".to_string(), col_u32(&self.node)),
            ("instructions".to_string(), col_u64(&self.instructions)),
            ("cycles".to_string(), col_u64(&self.cycles)),
            ("ipc".to_string(), col_f64(&self.ipc)),
            ("l1d_hit_rate".to_string(), col_f64(&self.l1d_hit_rate)),
            ("llc_hit_rate".to_string(), col_f64(&self.llc_hit_rate)),
            ("run_queue".to_string(), col_u32(&self.run_queue)),
            ("event_queue_depth".to_string(), col_u32(&self.event_queue_depth)),
            ("event_pushes".to_string(), col_u64(&self.event_pushes)),
            ("event_pops".to_string(), col_u64(&self.event_pops)),
            ("net_msgs".to_string(), col_u64(&self.net_msgs)),
            ("net_bytes".to_string(), col_u64(&self.net_bytes)),
        ]);
        let gauges = Value::Obj(vec![
            ("t_ns".to_string(), col_u64(&self.gauge_t_ns)),
            ("gauge".to_string(), col_u32(&self.gauge_id)),
            ("value".to_string(), Value::Arr(self.gauge_value.iter().map(|&x| Value::I64(x)).collect())),
            (
                "names".to_string(),
                Value::Arr(self.gauge_names.iter().map(|n| Value::Str(n.clone())).collect()),
            ),
        ]);
        let doc = Value::Obj(vec![("nodes".to_string(), nodes), ("gauges".to_string(), gauges)]);
        serde_json::to_string(&Raw(doc)).expect("series JSON rendering is infallible")
    }
}

struct Raw(Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(node: u32, instructions: u64, cycles: u64) -> NodeSample {
        let counters = PerfCounters { instructions, cycles, ..PerfCounters::default() };
        NodeSample { node, counters, run_queue: 2 }
    }

    #[test]
    fn deltas_are_per_sample_not_cumulative() {
        let mut ts = TimeSeries::new();
        let cluster = |nodes| ClusterSample {
            nodes,
            event_queue_depth: 4,
            event_pushes: 10,
            event_pops: 6,
            net_msgs: 1,
            net_bytes: 100,
        };
        ts.push_sample(1_000, &cluster(vec![sample(0, 100, 200)]), &[]);
        ts.push_sample(2_000, &cluster(vec![sample(0, 300, 500)]), &[]);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.instructions, vec![100, 200]);
        assert_eq!(ts.cycles, vec![200, 300]);
        assert!((ts.ipc[1] - 200.0 / 300.0).abs() < 1e-12);
    }

    #[test]
    fn csv_and_json_render() {
        let mut ts = TimeSeries::new();
        let g = ts.add_gauge("svc.inflight".to_string());
        assert_eq!(g, 0);
        let s = ClusterSample {
            nodes: vec![sample(0, 50, 100)],
            event_queue_depth: 1,
            event_pushes: 2,
            event_pops: 1,
            net_msgs: 0,
            net_bytes: 0,
        };
        ts.push_sample(500, &s, &[3]);
        let csv = ts.to_csv();
        assert!(csv.starts_with("t_ns,node,"));
        assert_eq!(csv.lines().count(), 2);
        let json = ts.to_json();
        assert!(json.contains("\"nodes\"") && json.contains("\"gauges\""));
        let rows: Vec<_> = ts.gauge_rows().collect();
        assert_eq!(rows, vec![(500, "svc.inflight", 3)]);
    }
}
