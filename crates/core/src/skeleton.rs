//! The skeleton generator (§4.3): inferred thread/network model →
//! deployable service skeleton.

use ditto_app::service::NetworkModel;
use ditto_profile::{AppProfile, InferredNetworkModel};

/// Chooses the clone's network model from the profiled skeleton.
///
/// I/O-multiplexing processes become epoll worker pools of the observed
/// size (a single multiplexing thread collapses accept+handle into one
/// loop, like Redis/NGINX); blocking processes become
/// thread-per-connection servers whose thread count scales with load,
/// like the original.
pub fn generate_network_model(profile: &AppProfile) -> NetworkModel {
    let _span = ditto_obs::selfprof::span("skeleton");
    match profile.threads.network {
        InferredNetworkModel::IoMultiplexing { workers } => {
            if workers <= 1 {
                NetworkModel::EpollWorkers { workers: 0 }
            } else {
                NetworkModel::EpollWorkers { workers }
            }
        }
        InferredNetworkModel::ThreadPerConnection | InferredNetworkModel::Unknown => {
            NetworkModel::ThreadPerConn
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_hw::counters::PerfCounters;
    use ditto_profile::{MetricSet, SyscallProfile, ThreadModelProfile};
    use ditto_sim::time::SimDuration;

    fn profile_with(network: InferredNetworkModel) -> AppProfile {
        AppProfile {
            instr: ditto_profile::InstrProfiler::new(true).finish(),
            syscalls: SyscallProfile::default(),
            threads: ThreadModelProfile { clusters: Vec::new(), network },
            metrics: MetricSet {
                ipc: 0.0,
                branch_miss_rate: 0.0,
                l1i_miss_rate: 0.0,
                l1d_miss_rate: 0.0,
                l2_miss_rate: 0.0,
                llc_miss_rate: 0.0,
                net_bandwidth: 0.0,
                disk_bandwidth: 0.0,
                topdown: Default::default(),
                counters: PerfCounters::new(),
            },
            requests: 0,
            window: SimDuration::ZERO,
        }
    }

    #[test]
    fn worker_pool_is_reproduced() {
        let p = profile_with(InferredNetworkModel::IoMultiplexing { workers: 4 });
        assert_eq!(generate_network_model(&p), NetworkModel::EpollWorkers { workers: 4 });
    }

    #[test]
    fn single_multiplexer_collapses() {
        let p = profile_with(InferredNetworkModel::IoMultiplexing { workers: 1 });
        assert_eq!(generate_network_model(&p), NetworkModel::EpollWorkers { workers: 0 });
    }

    #[test]
    fn blocking_becomes_thread_per_conn() {
        let p = profile_with(InferredNetworkModel::ThreadPerConnection);
        assert_eq!(generate_network_model(&p), NetworkModel::ThreadPerConn);
    }
}
