//! Reusable single-tier experiment harness: deploy a service (original or
//! clone) on a two-machine testbed, drive it with a load generator,
//! measure hardware metrics and latency — and close the fine-tuning loop.
//!
//! Every evaluation figure builds on this: Figure 5/7 run original and
//! clone side by side; Figure 9 sweeps generator stages; Figures 10/11
//! add stressors or scale cores/frequency before driving.

use ditto_app::service::ServiceSpec;
use ditto_hw::platform::PlatformSpec;
use ditto_kernel::{Cluster, NodeId, Pid};
use ditto_obs::{selfprof, ObsConfig, ObsReport, ObsSink};
use ditto_profile::{AppProfile, MetricSet, Profiler};
use ditto_sim::executor::SimExecutor;
use ditto_sim::rng::stream_seed;
use ditto_sim::stats::LatencyHistogram;
use ditto_sim::time::SimDuration;
use ditto_workload::{
    ClosedLoopConfig, LoadAggregate, LoadPlan, LoadSummary, OpenLoopConfig, Recorder,
};

use crate::body_gen::TuneKnobs;
use crate::clone::Ditto;
use crate::tuner::{FineTuner, TuneResult};

/// The service port used by the harness.
pub const SERVICE_PORT: u16 = 9000;

/// Which load generator drives the service (§6.1.2 uses open-loop for
/// Memcached/NGINX/Social Network, closed-loop YCSB for MongoDB/Redis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadKind {
    /// Poisson open-loop at a target QPS.
    OpenLoop {
        /// Aggregate target QPS.
        qps: f64,
        /// Client connections.
        connections: usize,
    },
    /// Closed-loop with one outstanding request per connection.
    ClosedLoop {
        /// Concurrent connections.
        connections: usize,
        /// Think time between requests.
        think: SimDuration,
    },
}

impl LoadKind {
    fn spawn(&self, cluster: &mut Cluster, server: NodeId, client: NodeId, recorder: &Recorder) {
        match *self {
            LoadKind::OpenLoop { qps, connections } => {
                let mut cfg = OpenLoopConfig::new(server, SERVICE_PORT, qps);
                cfg.connections = connections;
                cfg.spawn(cluster, client, recorder).expect("valid open-loop config");
            }
            LoadKind::ClosedLoop { connections, think } => {
                let mut cfg = ClosedLoopConfig::new(server, SERVICE_PORT, connections);
                cfg.think = think;
                cfg.spawn(cluster, client, recorder);
            }
        }
    }
}

/// A two-machine testbed configuration.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Platform of the server under test (node 0).
    pub server: PlatformSpec,
    /// Platform of the client machine (node 1).
    pub client: PlatformSpec,
    /// Experiment seed.
    pub seed: u64,
    /// Warmup before the measurement window opens.
    pub warmup: SimDuration,
    /// Measurement window length.
    pub window: SimDuration,
    /// What the run records about itself (tracing, sampling, pipeline
    /// self-profiling). Defaults to fully off; measured outputs are
    /// byte-identical either way.
    pub obs: ObsConfig,
    /// How the cluster executes its logical processes (sequential or a
    /// parallel worker gang). Measured outputs are byte-identical under
    /// either strategy; this only trades wall-clock time.
    pub executor: SimExecutor,
}

impl Testbed {
    /// A platform-A server driven from a platform-C client.
    pub fn default_ab(seed: u64) -> Self {
        Testbed {
            server: PlatformSpec::a(),
            client: PlatformSpec::c(),
            seed,
            warmup: SimDuration::from_millis(40),
            window: SimDuration::from_millis(200),
            obs: ObsConfig::default(),
            executor: SimExecutor::default(),
        }
    }
}

/// The measured outcome of one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Hardware metrics over the window.
    pub metrics: MetricSet,
    /// Load-side latency/throughput.
    pub load: LoadSummary,
    /// The raw (bucket-exact) latency histogram behind `load.latency`.
    /// Kept so deterministic runs can be compared bit-for-bit and so
    /// fleet-level aggregation can merge without percentile error.
    pub histogram: LatencyHistogram,
    /// Full profile, when profiling was requested.
    pub profile: Option<AppProfile>,
    /// Instructions replayed analytically by the execution fast path
    /// across the whole cluster. Diagnostic: lives outside `metrics` so
    /// fast and slow runs compare bit-identical, but lets tests assert the
    /// fast path actually engaged.
    pub fastforward_iterations: u64,
    /// What the run recorded about itself (trace, time series, pipeline
    /// stage profile). `None` unless [`Testbed::obs`] enabled something.
    pub obs: Option<ObsReport>,
}

/// One scenario phase's measured load.
#[derive(Debug, Clone)]
pub struct PhaseSummary {
    /// Phase name from the [`LoadPlan`].
    pub name: String,
    /// Load summary over the phase's window.
    pub summary: LoadSummary,
}

/// The measured outcome of one scenario run: per-phase windows plus a
/// bucket-exact whole-scenario aggregate.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// One summary per plan phase, in plan order.
    pub phases: Vec<PhaseSummary>,
    /// Whole-scenario aggregate (histograms merged bucket-exactly).
    pub overall: LoadSummary,
    /// The merged whole-scenario latency histogram.
    pub histogram: LatencyHistogram,
    /// Hardware metrics over the whole scenario.
    pub metrics: MetricSet,
    /// Fast-path engagement diagnostic (see [`RunOutcome`]).
    pub fastforward_iterations: u64,
    /// Observability report, when enabled.
    pub obs: Option<ObsReport>,
}

impl Testbed {
    /// Deploys the service produced by `deploy` on node 0, drives it with
    /// `load` from node 1, and measures. With `profile = true` the full
    /// Ditto profilers are attached for the window.
    ///
    /// `deploy` receives the cluster (for dataset/file setup) and the
    /// server node, and must return the service spec to deploy.
    pub fn run<F>(&self, deploy: F, load: &LoadKind, profile: bool) -> RunOutcome
    where
        F: FnOnce(&mut Cluster, NodeId) -> ServiceSpec,
    {
        self.run_with(deploy, load, profile, |_, _| {})
    }

    /// Like [`Testbed::run`], with a `configure` hook executed after the
    /// service starts but before load begins — used to add stressors
    /// (Figure 10) or scale cores/frequency (Figure 11). Metrics are read
    /// per-process so co-located work does not pollute them.
    pub fn run_with<F, C>(&self, deploy: F, load: &LoadKind, profile: bool, configure: C) -> RunOutcome
    where
        F: FnOnce(&mut Cluster, NodeId) -> ServiceSpec,
        C: FnOnce(&mut Cluster, Pid),
    {
        let server = NodeId(0);
        let client = NodeId(1);
        let sink = ObsSink::new(&self.obs);
        if self.obs.self_profile {
            selfprof::set_enabled(true);
        }
        let mut cluster =
            Cluster::new(vec![self.server.clone(), self.client.clone()], self.seed);
        cluster.set_executor(self.executor);
        // Install the sink before deploy so services build their probe
        // handles from it.
        cluster.set_obs(sink.clone());
        let spec = deploy(&mut cluster, server);
        let pid: Pid = spec.deploy(&mut cluster, server);
        cluster.run_for(SimDuration::from_millis(10));
        configure(&mut cluster, pid);

        let recorder = Recorder::new();
        load.spawn(&mut cluster, server, client, &recorder);
        cluster.run_for(self.warmup);

        let profiler = profile.then(|| Profiler::attach(&mut cluster, server, pid));
        if profiler.is_none() {
            MetricSet::begin(&mut cluster, server);
        }
        recorder.start_window(cluster.now());
        cluster.run_for(self.window);
        recorder.end_window(cluster.now());

        let (metrics, app_profile) = match profiler {
            Some(p) => {
                let prof = p.finish(&mut cluster);
                (prof.metrics, Some(prof))
            }
            None => (MetricSet::end_for_pid(&cluster, server, pid, self.window), None),
        };
        let obs = sink.finish().map(|mut r| {
            r.stages = selfprof::take_report();
            r
        });
        if self.obs.self_profile {
            selfprof::set_enabled(false);
        }
        RunOutcome {
            metrics,
            load: recorder.summary(self.window),
            histogram: recorder.histogram(),
            profile: app_profile,
            fastforward_iterations: cluster.fastforward_iterations(),
            obs,
        }
    }

    /// Plays a traffic scenario against the service: every
    /// [`LoadPlan`] source is spawned as a hybrid generator (its rate
    /// curve led in through the warmup), and each plan phase becomes
    /// its own recorder window with its own [`LoadSummary`], alongside
    /// a bucket-exact whole-scenario aggregate.
    ///
    /// Phase boundaries are anchored at warmup end; the generator
    /// anchors scenario time when its pool finishes dialing, a few
    /// network round-trips after spawn — negligible against the warmup,
    /// and identical for original and clone.
    pub fn run_scenario<F>(&self, deploy: F, plan: &LoadPlan) -> ScenarioOutcome
    where
        F: FnOnce(&mut Cluster, NodeId) -> ServiceSpec,
    {
        let server = NodeId(0);
        let client = NodeId(1);
        let sink = ObsSink::new(&self.obs);
        let mut cluster =
            Cluster::new(vec![self.server.clone(), self.client.clone()], self.seed);
        cluster.set_executor(self.executor);
        cluster.set_obs(sink.clone());
        let spec = deploy(&mut cluster, server);
        let pid: Pid = spec.deploy(&mut cluster, server);
        cluster.run_for(SimDuration::from_millis(10));

        let recorder = Recorder::new();
        for source in &plan.sources {
            source
                .to_config(server, SERVICE_PORT, self.warmup)
                .spawn(&mut cluster, client, &recorder)
                .expect("valid scenario source");
        }
        cluster.run_for(self.warmup);

        MetricSet::begin(&mut cluster, server);
        let mut agg = LoadAggregate::new();
        let mut phases = Vec::with_capacity(plan.phases.len());
        for phase in &plan.phases {
            recorder.start_window(cluster.now());
            cluster.run_for(phase.duration);
            recorder.end_window(cluster.now());
            let summary = recorder.summary(phase.duration);
            agg.add(&summary, &recorder.histogram(), phase.duration);
            phases.push(PhaseSummary { name: phase.name.clone(), summary });
        }
        let metrics = MetricSet::end_for_pid(&cluster, server, pid, plan.total_duration());
        ScenarioOutcome {
            phases,
            overall: agg.summary(),
            histogram: agg.histogram().clone(),
            metrics,
            fastforward_iterations: cluster.fastforward_iterations(),
            obs: sink.finish(),
        }
    }

    /// Runs the generated clone of `profile` through the same scenario.
    pub fn run_scenario_clone(
        &self,
        ditto: &Ditto,
        profile: &AppProfile,
        plan: &LoadPlan,
    ) -> ScenarioOutcome {
        self.run_scenario(
            |cluster, node| ditto.clone_service(cluster, node, SERVICE_PORT, profile),
            plan,
        )
    }

    /// Runs the generated clone of `profile` under the same load.
    pub fn run_clone(
        &self,
        ditto: &Ditto,
        profile: &AppProfile,
        load: &LoadKind,
    ) -> RunOutcome {
        self.run(
            |cluster, node| ditto.clone_service(cluster, node, SERVICE_PORT, profile),
            load,
            false,
        )
    }

    /// Closes the fine-tuning loop (§4.5): repeatedly regenerates the
    /// clone with adjusted knobs, measures it on this testbed, and
    /// converges on the profiled target metrics. Returns the tuned
    /// pipeline and the tuning trace.
    pub fn tune_clone(
        &self,
        base: &Ditto,
        profile: &AppProfile,
        load: &LoadKind,
        tuner: &FineTuner,
    ) -> (Ditto, TuneResult) {
        let mut seed_bump = 0u64;
        let result = tuner.tune(&profile.metrics, |knobs: &TuneKnobs| {
            seed_bump += 1;
            let _span = selfprof::span("tuning");
            let candidate = Ditto { knobs: *knobs, ..base.clone() };
            // Iteration seeds are derived through the splitmix64 stream so
            // that user seeds related by simple bit arithmetic (e.g.
            // differing only in high bits) never share iteration streams —
            // the old `seed ^ (bump << 16)` derivation aliased them.
            // Iterations never record observability themselves (the outer
            // run owns the thread-local stage profile).
            let bed = Testbed {
                seed: stream_seed(self.seed, seed_bump),
                obs: ObsConfig::default(),
                ..self.clone()
            };
            bed.run_clone(&candidate, profile, load).metrics
        });
        let tuned = Ditto { knobs: result.knobs, ..base.clone() };
        (tuned, result)
    }
}

#[cfg(test)]
mod tests {
    use ditto_sim::rng::stream_seed;

    /// Regression for the old tuning-seed derivation `seed ^ (bump << 16)`:
    /// user seeds that differ only in bits ≥ 16 landed exactly on each
    /// other's iteration seeds, so "independent" experiments could replay
    /// identical clusters. The stream derivation must keep the iteration
    /// seeds of such related user seeds fully disjoint — and distinct from
    /// both base seeds themselves.
    #[test]
    fn tuning_iteration_seeds_do_not_alias_high_bit_related_user_seeds() {
        let a: u64 = 0xAB;
        let a_stream: Vec<u64> = (1..=10).map(|k| stream_seed(a, k)).collect();
        for bump in 1..=10u64 {
            let b = a ^ (bump << 16);
            // The OLD derivation aliased: iteration `bump` of testbed `a`
            // used exactly seed `b`.
            assert_eq!(a ^ (bump << 16), b);
            assert!(
                !a_stream.contains(&b),
                "iteration stream of {a:#x} contains related user seed {b:#x}"
            );
            for k in 1..=10 {
                let s = stream_seed(b, k);
                assert!(
                    !a_stream.contains(&s),
                    "iteration streams of {a:#x} and {b:#x} collide at k={k}"
                );
            }
        }
    }
}
