//! Ditto's cloning pipeline — the paper's primary contribution (§4, §5).
//!
//! The pipeline mirrors Figure 3:
//!
//! 1. **Microservice topology** — the traced RPC dependency DAG
//!    (`ditto_trace::ServiceGraph`) drives multi-tier cloning
//!    ([`clone::Ditto::clone_graph`]).
//! 2. **Application skeleton** — the profiled thread/network model picks
//!    the synthetic skeleton ([`skeleton`]).
//! 3. **Application body** — syscalls, instruction mix, branch behaviour,
//!    data memory (Equation 1), instruction memory (Equation 2) and data
//!    dependencies become behavioural parameters ([`body_gen`]) that
//!    `ditto_hw::codegen` materialises into synthetic code.
//! 4. **Fine tuning** — grouped-knob feedback against hardware counters
//!    ([`tuner`]).
//!
//! [`stages::GeneratorStages`] gates each mechanism for the accuracy
//! decomposition of Figure 9.

pub mod autoscaler;
pub mod body_gen;
pub mod capacity;
pub mod clone;
pub mod fleet;
pub mod harness;
pub mod ingest;
pub mod scale;
pub mod skeleton;
pub mod stages;
pub mod tuner;

pub use autoscaler::{Autoscaler, AutoscalerConfig};
pub use body_gen::{generate_body_params, GeneratorConfig, TuneKnobs};
pub use capacity::{cheapest_meeting_slo, modeled_p99_ns, prune_dominated, CostModel, PlanPoint};
pub use clone::Ditto;
pub use fleet::{
    run_fidelity_matrix, CacheKey, DeployFn, ExperimentSpec, FidelityCell, FidelityMatrix, Fleet,
    MatrixConfig, ProfileCache, ScenarioSpec, ServiceEntry,
};
pub use harness::{LoadKind, PhaseSummary, RunOutcome, ScenarioOutcome, Testbed};
pub use ingest::{
    clone_from_trace, deploy_trace_clone, run_trace_clone, synthesize_profile, TierCalibration,
    TraceClone, TraceCloneConfig, TraceRunOutcome, TRACE_CLONE_PORT,
};
pub use scale::{
    clone_router_response_bytes, deploy_cloned_tier, ControlConfig, ControlledOutcome,
    PlatformAssignment, RoleProfiles, ScenarioTierOutcome, ShardedOutcome, ShardedTestbed,
    TierPipeline,
};
pub use skeleton::generate_network_model;
pub use stages::GeneratorStages;
pub use tuner::{FineTuner, TuneResult, TuneStep};
