//! The application-body generator (§4.4): profile → behavioural
//! parameters → synthetic code.
//!
//! Converts a profiled [`AppProfile`] into the [`BodyParams`] that
//! `ditto_hw::codegen` materialises, honouring the enabled
//! [`GeneratorStages`]: Equation (1) for data working sets, Equation (2)
//! for instruction working sets, log-quantized branch rates, exponential
//! dependency bins, the profiled shared and pointer-chasing fractions,
//! and the measured `rep` lengths.

use ditto_hw::codegen::BodyParams;
use ditto_hw::isa::{BranchBehavior, InstrClass};
use ditto_profile::AppProfile;
use ditto_sim::quant::{dep_from_bin, DEP_BINS};

use crate::stages::GeneratorStages;

/// Caps applied during generation.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GeneratorConfig {
    /// Largest synthetic data working set.
    pub max_data_ws: u64,
    /// Largest synthetic instruction working set.
    pub max_instr_ws: u64,
    /// PC base of the generated code (distinct from any original).
    pub pc_base: u64,
    /// Seed for materialization.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            max_data_ws: 512 * 1024 * 1024,
            max_instr_ws: 8 * 1024 * 1024,
            pc_base: 0x5000_0000,
            seed: 0xd177_0bed,
        }
    }
}

/// Tunable multipliers adjusted by the fine tuner (§4.5). All default to
/// 1.0 (no adjustment).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TuneKnobs {
    /// Scales instruction working-set sizes (frontend group, tuned jointly
    /// with branch rates per the paper's knob grouping).
    pub imem_scale: f64,
    /// Scales data working-set sizes (backend group).
    pub dmem_scale: f64,
    /// Scales the per-request instruction count.
    pub instr_scale: f64,
    /// Scales branch minority/transition rates (frontend group).
    pub branch_scale: f64,
    /// Shifts data-access weight between the smallest window and the rest:
    /// positive moves the given fraction of accesses to 64 B (more L1d
    /// hits), negative moves L1-resident weight to the largest window.
    /// Corrects the cross-class interleaving inflation of the profiled
    /// reuse distances that §4.5 attributes to skeleton/body interaction.
    pub dmem_locality: f64,
    /// Same, for instruction working sets (L1i control).
    pub imem_locality: f64,
    /// ILP/MLP group (§4.4.6): scales dependency distances up (more
    /// instruction-level parallelism) and pointer-chasing down (more
    /// memory-level parallelism) when the clone's IPC falls short, and
    /// vice versa.
    pub ilp_scale: f64,
}

impl Default for TuneKnobs {
    fn default() -> Self {
        TuneKnobs {
            imem_scale: 1.0,
            dmem_scale: 1.0,
            instr_scale: 1.0,
            branch_scale: 1.0,
            dmem_locality: 0.0,
            imem_locality: 0.0,
            ilp_scale: 1.0,
        }
    }
}

/// Applies a locality shift to a `(size, weight)` distribution:
/// `locality > 0` moves that fraction of total weight into the smallest
/// bin; `locality < 0` moves up to that fraction of small-bin (≤ 32 KB)
/// weight into the largest bin.
fn shift_locality(sets: &mut Vec<(u64, f64)>, locality: f64) {
    if sets.is_empty() || locality == 0.0 {
        return;
    }
    let total: f64 = sets.iter().map(|&(_, w)| w).sum();
    if total <= 0.0 {
        return;
    }
    if locality > 0.0 {
        let l = locality.min(0.95);
        for (_, w) in sets.iter_mut() {
            *w *= 1.0 - l;
        }
        let min_size = sets.iter().map(|&(s, _)| s).min().unwrap_or(64).min(64);
        if let Some(slot) = sets.iter_mut().find(|(s, _)| *s == min_size) {
            slot.1 += total * l;
        } else {
            sets.push((64, total * l));
        }
    } else {
        let l = (-locality).min(0.95);
        let mut moved = 0.0;
        for (s, w) in sets.iter_mut() {
            if *s <= 32 * 1024 {
                let take = *w * l;
                *w -= take;
                moved += take;
            }
        }
        let max_size = sets.iter().map(|&(s, _)| s).max().unwrap_or(64);
        if let Some(slot) = sets.iter_mut().find(|(s, _)| *s == max_size) {
            slot.1 += moved;
        }
    }
    sets.retain(|&(_, w)| w > 0.0);
}

fn scale_pow2(bytes: u64, scale: f64, max: u64) -> u64 {
    let scaled = (bytes as f64 * scale).max(64.0);
    (scaled as u64).next_power_of_two().min(max)
}

/// Generates body parameters from a profile under the enabled stages.
pub fn generate_body_params(
    profile: &AppProfile,
    stages: GeneratorStages,
    config: &GeneratorConfig,
    knobs: &TuneKnobs,
) -> BodyParams {
    // --- Instruction count (stage C) ---
    let instructions = if stages.instr_count {
        (profile.instructions_per_request() * knobs.instr_scale).max(64.0) as u64
    } else {
        // Stage A/B: empty handler body — a token few instructions so the
        // skeleton still runs.
        64
    };

    // --- Instruction mix (stage D) ---
    let mix: Vec<(InstrClass, f64)> = if stages.instr_mix {
        profile
            .instr
            .mix()
            .into_iter()
            // The synthetic body regenerates compute/memory/branch work;
            // unconditional jumps re-enter as loop overhead and are folded
            // into the ALU share.
            .map(|(c, w)| if c == InstrClass::Jump { (InstrClass::IntAlu, w) } else { (c, w) })
            .collect()
    } else {
        // Stage C fallback: `add rax, rax` filler.
        vec![(InstrClass::IntAlu, 1.0)]
    };

    // --- Branch behaviour (stage E) ---
    let branch_rates: Vec<(BranchBehavior, f64)> = if stages.branch {
        profile
            .instr
            .branch_rates()
            .into_iter()
            .map(|((taken, trans), w)| {
                (
                    BranchBehavior::new(
                        (taken * knobs.branch_scale).clamp(0.0, 0.5),
                        (trans * knobs.branch_scale).clamp(0.0, 1.0),
                    ),
                    w,
                )
            })
            .collect()
    } else {
        // Paper: "assume the highest branch taken/transition rate".
        vec![(BranchBehavior::new(0.5, 0.5), 1.0)]
    };

    // --- Data working sets: Equation (1) (stage G) ---
    let data_working_sets: Vec<(u64, f64)> = if stages.data_mem {
        let parts = profile.instr.data_curve.accesses_per_working_set(config.max_data_ws);
        let mut sets: Vec<(u64, f64)> = parts
            .into_iter()
            .filter(|&(_, a)| a > 0)
            .map(|(s, a)| (scale_pow2(s, knobs.dmem_scale, config.max_data_ws), a as f64))
            .collect();
        shift_locality(&mut sets, knobs.dmem_locality);
        if sets.is_empty() {
            vec![(64, 1.0)]
        } else {
            sets
        }
    } else {
        // Paper: "all memory operations accessing the smallest working sets".
        vec![(64, 1.0)]
    };

    // --- Instruction working sets: Equation (2) (stage F) ---
    let instr_working_sets: Vec<(u64, f64)> = if stages.instr_mem {
        let parts = profile.instr.instr_curve.executions_per_working_set(config.max_instr_ws);
        let mut sets: Vec<(u64, f64)> = parts
            .into_iter()
            .filter(|&(_, e)| e > 0)
            .map(|(s, e)| (scale_pow2(s, knobs.imem_scale, config.max_instr_ws), e as f64))
            .collect();
        shift_locality(&mut sets, knobs.imem_locality);
        if sets.is_empty() {
            vec![(4096, 1.0)]
        } else {
            sets
        }
    } else {
        // Tiny loop: everything fits one i-cache set's worth of lines.
        vec![(1024, 1.0)]
    };

    // --- Dependencies / MLP (stage H) ---
    let (dep_distances, chase_fraction) = if stages.data_dep {
        let weights = profile.instr.raw.weights();
        let ilp = knobs.ilp_scale.max(0.05);
        let deps: Vec<(u64, f64)> = (0..DEP_BINS)
            .filter(|&b| weights.get(b).copied().unwrap_or(0.0) > 0.0)
            .map(|b| (((dep_from_bin(b) as f64 * ilp).round() as u64).max(1), weights[b]))
            .collect();
        let deps = if deps.is_empty() { vec![(8, 1.0)] } else { deps };
        (deps, (profile.instr.chase_fraction / ilp).clamp(0.0, 1.0))
    } else {
        // Paper: "strongest data dependencies".
        (vec![(1, 1.0)], 0.0)
    };

    let shared_fraction = if stages.data_mem { profile.instr.shared_fraction } else { 0.0 };

    BodyParams {
        instructions,
        mix,
        branch_rates,
        data_working_sets,
        instr_working_sets,
        dep_distances,
        shared_fraction,
        chase_fraction,
        rep_bytes: profile.instr.rep_bytes_mean.clamp(64, 1 << 20) as u32,
        data_region: ditto_app::service::DATA_REGION,
        shared_region: ditto_app::service::SHARED_REGION,
        pc_base: config.pc_base,
        seed: config.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_profile::{InstrProfiler, MetricSet, SyscallProfile, ThreadModelProfile};
    use ditto_hw::core_model::{RetireEvent, RetireSink};
    use ditto_hw::counters::PerfCounters;
    use ditto_hw::isa::{Instr, MemRef, Reg};
    use ditto_sim::time::SimDuration;

    fn synthetic_profile() -> AppProfile {
        // Hand-feed an InstrProfiler a known stream.
        let mut p = InstrProfiler::new(true);
        let alu = Instr::alu(InstrClass::IntAlu, Reg(4), Reg(5), Reg::NONE);
        let ld = Instr::load(Reg(6), MemRef::read(1, 0));
        let br = Instr::cond_branch(0);
        for i in 0..1000u64 {
            p.retire(&RetireEvent { thread_key: 0, pc: 0x1000 + (i % 64) * 4, instr: &alu, addr: None, taken: None });
            p.retire(&RetireEvent {
                thread_key: 0,
                pc: 0x2000,
                instr: &ld,
                addr: Some((i % 128) * 64),
                taken: None,
            });
            p.retire(&RetireEvent { thread_key: 0, pc: 0x3000, instr: &br, addr: None, taken: Some(i % 4 == 0) });
        }
        let instr = p.finish();
        AppProfile {
            instr,
            syscalls: SyscallProfile::default(),
            threads: ThreadModelProfile {
                clusters: Vec::new(),
                network: ditto_profile::InferredNetworkModel::Unknown,
            },
            metrics: MetricSet {
                ipc: 1.0,
                branch_miss_rate: 0.05,
                l1i_miss_rate: 0.01,
                l1d_miss_rate: 0.05,
                l2_miss_rate: 0.3,
                llc_miss_rate: 0.2,
                net_bandwidth: 0.0,
                disk_bandwidth: 0.0,
                topdown: Default::default(),
                counters: PerfCounters::new(),
            },
            requests: 10,
            window: SimDuration::from_millis(100),
        }
    }

    #[test]
    fn full_stages_recover_profile_shape() {
        let profile = synthetic_profile();
        let params = generate_body_params(
            &profile,
            GeneratorStages::all(),
            &GeneratorConfig::default(),
            &TuneKnobs::default(),
        );
        // 3000 instrs / 10 requests = 300/request.
        assert_eq!(params.instructions, 300);
        // Mix: 1/3 each of alu, load, branch.
        let w = |c: InstrClass| {
            params.mix.iter().find(|&&(mc, _)| mc == c).map(|&(_, w)| w).unwrap_or(0.0)
        };
        assert!((w(InstrClass::Load) - 1.0 / 3.0).abs() < 0.01);
        assert!((w(InstrClass::CondBranch) - 1.0 / 3.0).abs() < 0.01);
        // Data working set: 128 lines → 8KB window must dominate.
        let big: f64 = params
            .data_working_sets
            .iter()
            .filter(|&&(s, _)| s >= 4096)
            .map(|&(_, w)| w)
            .sum();
        let total: f64 = params.data_working_sets.iter().map(|&(_, w)| w).sum();
        assert!(big / total > 0.8, "{:?}", params.data_working_sets);
        // Branch: taken rate 1/4 → minority 0.25.
        assert!(params
            .branch_rates
            .iter()
            .any(|(b, _)| (b.taken_rate - 0.25).abs() < 0.01));
    }

    #[test]
    fn skeleton_stage_produces_empty_body() {
        let profile = synthetic_profile();
        let params = generate_body_params(
            &profile,
            GeneratorStages::skeleton_only(),
            &GeneratorConfig::default(),
            &TuneKnobs::default(),
        );
        assert_eq!(params.instructions, 64);
        assert_eq!(params.mix, vec![(InstrClass::IntAlu, 1.0)]);
        assert_eq!(params.data_working_sets, vec![(64, 1.0)]);
    }

    #[test]
    fn stage_c_uses_filler_mix() {
        let profile = synthetic_profile();
        let mut stages = GeneratorStages::skeleton_only();
        stages.syscalls = true;
        stages.instr_count = true;
        let params = generate_body_params(
            &profile,
            stages,
            &GeneratorConfig::default(),
            &TuneKnobs::default(),
        );
        assert_eq!(params.instructions, 300);
        assert_eq!(params.mix, vec![(InstrClass::IntAlu, 1.0)]);
        // Highest branch rates assumed before stage E.
        assert_eq!(params.branch_rates[0].0.taken_rate, 0.5);
    }

    #[test]
    fn knobs_scale_working_sets() {
        let profile = synthetic_profile();
        let base = generate_body_params(
            &profile,
            GeneratorStages::all(),
            &GeneratorConfig::default(),
            &TuneKnobs::default(),
        );
        let scaled = generate_body_params(
            &profile,
            GeneratorStages::all(),
            &GeneratorConfig::default(),
            &TuneKnobs { dmem_scale: 4.0, ..Default::default() },
        );
        let max_base = base.data_working_sets.iter().map(|&(s, _)| s).max().unwrap();
        let max_scaled = scaled.data_working_sets.iter().map(|&(s, _)| s).max().unwrap();
        assert!(max_scaled >= max_base * 4, "base {max_base} scaled {max_scaled}");
    }
}
