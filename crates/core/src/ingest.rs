//! Trace-in, clone-out: clone synthesis when the only artifact is a
//! distributed trace (ROADMAP item 4).
//!
//! The normal pipeline profiles a live service (instruction stream,
//! syscalls, thread model) and clones from the [`AppProfile`]. When the
//! input is a foreign trace — Jaeger/OTel JSON from a service we never
//! ran — none of that exists. This module bridges the gap: it fabricates
//! a surrogate [`AppProfile`] per tier from the span statistics a trace
//! *does* carry ([`TierStats`]: span counts, exclusive service times,
//! peak concurrency, error rates), then closes the loop the same way §4.5
//! does — deploy the candidate clone, measure it, and adjust until its
//! service time matches the trace's.
//!
//! The surrogate is honest about what a trace cannot tell us: instruction
//! mix, working sets and branch behaviour use a fixed generic shape, and
//! only the *instruction budget* is fitted (a two-point secant on the
//! measured closed-loop latency, which is linear in per-request
//! instructions). What a trace does pin down — topology, call ratios,
//! fan-out, per-tier service time, worker concurrency, offered load — is
//! reproduced exactly.

use std::collections::HashMap;

use ditto_hw::core_model::{RetireEvent, RetireSink};
use ditto_hw::counters::PerfCounters;
use ditto_hw::isa::{Instr, InstrClass, MemRef, Reg};
use ditto_hw::platform::PlatformSpec;
use ditto_kernel::{Cluster, NodeId};
use ditto_profile::syscall_profile::SyscallStats;
use ditto_profile::{
    AppProfile, InferredNetworkModel, InstrProfiler, MetricSet, SyscallProfile, ThreadModelProfile,
};
use ditto_sim::rng::stream_seed;
use ditto_sim::time::SimDuration;
use ditto_trace::graph::ServiceEdge;
use ditto_trace::ingest::{ArrivalModel, IngestedWorkload, TierStats};
use ditto_trace::{ServiceGraph, TraceCollector};
use ditto_workload::{ClosedLoopConfig, LoadSummary, OpenLoopConfig, Recorder};

use crate::clone::Ditto;
use crate::harness::SERVICE_PORT;

/// How the trace-only synthesizer fills the gaps a trace leaves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceCloneConfig {
    /// Assumed instructions-per-cycle when converting a span's exclusive
    /// time into an instruction budget (the calibration loop corrects any
    /// error in this guess).
    pub assumed_ipc: f64,
    /// Whether to run the measure-and-adjust calibration loop per tier.
    pub calibrate: bool,
    /// Worker-pool cap for the concurrency-derived skeleton.
    pub max_workers: usize,
    /// Floor on fitted per-request instructions (the generator's minimum
    /// body size).
    pub min_instructions: f64,
}

impl Default for TraceCloneConfig {
    fn default() -> Self {
        TraceCloneConfig {
            assumed_ipc: 1.0,
            calibrate: true,
            max_workers: 8,
            min_instructions: 64.0,
        }
    }
}

/// Per-tier record of what calibration did.
#[derive(Debug, Clone, PartialEq)]
pub struct TierCalibration {
    /// Service name.
    pub service: String,
    /// The fitting target: the trace's exclusive service time, minus the
    /// testbed's own per-hop RPC overhead for each traced downstream call
    /// (that overhead re-appears at run time and must not be double-paid
    /// as compute).
    pub target_self_ns: f64,
    /// Closed-loop mean latency at the two probe budgets.
    pub measured_ns: [f64; 2],
    /// Fitted per-request instruction budget (after graph refinement,
    /// when the workload is multi-tier).
    pub fitted_ipr: f64,
    /// Slope of the affine span-duration model, ns per instruction —
    /// kept so later refinement passes can re-fit without new probes.
    pub cost_per_instr: f64,
}

/// A clone synthesized purely from an ingested trace: surrogate profiles
/// per tier plus the calibration trail.
#[derive(Debug, Clone)]
pub struct TraceClone {
    /// The ingested workload the clone reproduces.
    pub workload: IngestedWorkload,
    /// Surrogate profile per service, ready for [`Ditto::clone_graph`].
    pub profiles: HashMap<String, AppProfile>,
    /// Per-tier calibration records (empty when calibration is off).
    pub calibration: Vec<TierCalibration>,
}

/// The measured outcome of driving a trace-derived clone.
#[derive(Debug, Clone)]
pub struct TraceRunOutcome {
    /// End-to-end load summary at the entry tier.
    pub e2e: LoadSummary,
    /// `(service, node, port)` per deployed tier, entry tier first.
    pub placements: Vec<(String, NodeId, u16)>,
}

/// Fabricates a surrogate [`AppProfile`] for one tier from span
/// statistics alone.
///
/// The instruction stream shape (mix, working sets, branches) is a fixed
/// generic kernel — a trace carries no microarchitectural information —
/// but the *budget* is sized so the body burns the tier's exclusive
/// service time at `freq_ghz` under the assumed IPC, and the skeleton
/// reproduces the observed peak concurrency as an epoll worker pool.
pub fn synthesize_profile(
    tier: &TierStats,
    window: SimDuration,
    freq_ghz: f64,
    cfg: &TraceCloneConfig,
) -> AppProfile {
    // Generic body shape: equal parts ALU, loads over a few KB, and a
    // 25%-taken branch — the same stream the generator's own unit tests
    // use as a known-good profile.
    let mut p = InstrProfiler::new(true);
    let alu = Instr::alu(InstrClass::IntAlu, Reg(4), Reg(5), Reg::NONE);
    let ld = Instr::load(Reg(6), MemRef::read(1, 0));
    let br = Instr::cond_branch(0);
    for i in 0..1024u64 {
        p.retire(&RetireEvent {
            thread_key: 0,
            pc: 0x1000 + (i % 64) * 4,
            instr: &alu,
            addr: None,
            taken: None,
        });
        p.retire(&RetireEvent {
            thread_key: 0,
            pc: 0x2000,
            instr: &ld,
            addr: Some((i % 128) * 64),
            taken: None,
        });
        p.retire(&RetireEvent {
            thread_key: 0,
            pc: 0x3000,
            instr: &br,
            addr: None,
            taken: Some(i % 4 == 0),
        });
    }
    let mut instr = p.finish();

    let requests = tier.spans.max(1);
    // exclusive ns × cycles/ns × instructions/cycle = instruction budget.
    let ipr = (tier.mean_self_ns.max(1.0) * freq_ghz * cfg.assumed_ipc)
        .max(cfg.min_instructions);
    instr.instructions = (ipr * requests as f64).round() as u64;

    let mut syscalls = SyscallProfile::default();
    syscalls.stats.insert(
        "recvmsg".to_string(),
        SyscallStats { count: requests, total_bytes: requests * 128, blocked: 0, max_extent: 0 },
    );
    syscalls.stats.insert(
        "sendmsg".to_string(),
        SyscallStats { count: requests, total_bytes: requests * 256, blocked: 0, max_extent: 0 },
    );
    syscalls.stats.insert(
        "epoll_wait".to_string(),
        SyscallStats { count: requests, total_bytes: 0, blocked: requests, max_extent: 0 },
    );

    let workers = tier.concurrency.clamp(1, cfg.max_workers);
    AppProfile {
        instr,
        syscalls,
        threads: ThreadModelProfile {
            clusters: Vec::new(),
            network: InferredNetworkModel::IoMultiplexing { workers },
        },
        metrics: MetricSet {
            ipc: cfg.assumed_ipc,
            branch_miss_rate: 0.02,
            l1i_miss_rate: 0.01,
            l1d_miss_rate: 0.05,
            l2_miss_rate: 0.2,
            llc_miss_rate: 0.2,
            net_bandwidth: 0.0,
            disk_bandwidth: 0.0,
            topdown: Default::default(),
            counters: PerfCounters::new(),
        },
        requests,
        window,
    }
}

/// Mean *server-side span duration* of the single-tier clone of
/// `profile`, in ns, under a one-connection closed loop.
///
/// Measuring the clone's own spans (not client latency) keeps the
/// calibration in the same reference frame as the trace: span duration
/// vs. span duration. Client-side latency would fold in network RTT and
/// client kernel time — an overhead floor that can exceed a fast tier's
/// entire exclusive time and make the target unreachable.
fn measure_clone_ns(profile: &AppProfile, seed: u64) -> f64 {
    let server = NodeId(0);
    let client = NodeId(1);
    let mut cluster = Cluster::new(vec![PlatformSpec::a(), PlatformSpec::c()], seed);
    let collector = TraceCollector::new(1.0, seed);
    let mut spec = Ditto::new().clone_service(&mut cluster, server, SERVICE_PORT, profile);
    spec.collector = Some(collector.clone());
    spec.deploy(&mut cluster, server);
    cluster.run_for(SimDuration::from_millis(5));

    let recorder = Recorder::new();
    let mut cfg = ClosedLoopConfig::new(server, SERVICE_PORT, 1);
    cfg.collector = Some(collector.clone());
    cfg.spawn(&mut cluster, client, &recorder);
    cluster.run_for(SimDuration::from_millis(40));

    let spans = collector.spans();
    let served: Vec<u64> = spans
        .iter()
        .map(|s| s.end.saturating_since(s.start).as_nanos())
        .collect();
    if served.is_empty() {
        // The clone never served a traced request — fall back to client
        // latency so the caller still gets a finite probe.
        let recorder_summary = recorder.summary(SimDuration::from_millis(40));
        return recorder_summary.latency.mean.as_nanos() as f64;
    }
    served.iter().sum::<u64>() as f64 / served.len() as f64
}

/// Tier statistics for a near-empty service, used by the hop-overhead
/// probe: the smallest body the synthesizer will emit, so the measured
/// spans are almost pure skeleton and RPC machinery.
fn minimal_probe_tier(name: &str) -> TierStats {
    TierStats {
        service: name.into(),
        spans: 256,
        mean_self_ns: 1_000.0,
        mean_total_ns: 1_000.0,
        p50_total_ns: 1_000.0,
        concurrency: 1,
        error_rate: 0.0,
    }
}

/// Measures the testbed's per-hop RPC overhead: the part of a parent
/// span's duration that one downstream call adds *outside* the child's
/// own span (send syscalls, wire transit both ways, downstream queue and
/// dispatch before the child span opens).
///
/// This matters because a trace's exclusive time for a tier with
/// downstream edges already *contains* the original's per-hop overhead —
/// self time is span duration minus child cover, and the overhead is
/// never inside the child. A clone calibrated to burn the full exclusive
/// time as compute would then re-add its own hop overhead at run time,
/// inflating every mid-tier span by `hop × calls` and compounding toward
/// the entry tier. The calibration target must be discounted by this
/// probe's estimate.
fn measure_rpc_hop_ns(
    window: SimDuration,
    freq_ghz: f64,
    cfg: &TraceCloneConfig,
    seed: u64,
) -> f64 {
    let parent_profile = synthesize_profile(&minimal_probe_tier("hop-parent"), window, freq_ghz, cfg);
    let child_profile = synthesize_profile(&minimal_probe_tier("hop-child"), window, freq_ghz, cfg);
    // Baseline: the same parent body with no downstream edge.
    let solo_ns = measure_clone_ns(&parent_profile, stream_seed(seed, 1));

    let graph = ServiceGraph {
        services: vec!["hop-parent".into(), "hop-child".into()],
        edges: vec![ServiceEdge { from: 0, to: 1, calls_per_request: 1.0, error_rate: 0.0 }],
    };
    let mut profiles = HashMap::new();
    profiles.insert("hop-parent".to_string(), parent_profile);
    profiles.insert("hop-child".to_string(), child_profile);

    // Parent and child on distinct server nodes, as deployment spreads
    // tiers; the client drives a one-connection closed loop.
    let mut cluster = Cluster::new(
        vec![PlatformSpec::a(), PlatformSpec::a(), PlatformSpec::c()],
        stream_seed(seed, 2),
    );
    let collector = TraceCollector::new(1.0, stream_seed(seed, 3));
    let placements = Ditto::new().clone_graph(
        &mut cluster,
        &[NodeId(0), NodeId(1)],
        SERVICE_PORT,
        &graph,
        &profiles,
        Some(collector.clone()),
    );
    cluster.run_for(SimDuration::from_millis(5));
    let (entry_node, entry_port) = (placements[0].1, placements[0].2);
    let recorder = Recorder::new();
    let mut drive = ClosedLoopConfig::new(entry_node, entry_port, 1);
    drive.collector = Some(collector.clone());
    drive.spawn(&mut cluster, NodeId(2), &recorder);
    cluster.run_for(SimDuration::from_millis(40));

    let mut sums: HashMap<&str, (u64, u64)> = HashMap::new();
    for s in collector.spans() {
        let e = sums.entry(if s.service.contains("parent") { "p" } else { "c" }).or_default();
        e.0 += 1;
        e.1 += s.end.saturating_since(s.start).as_nanos();
    }
    let mean = |k: &str| {
        sums.get(k)
            .filter(|(n, _)| *n > 0)
            .map(|(n, tot)| *tot as f64 / *n as f64)
            .unwrap_or(0.0)
    };
    (mean("p") - mean("c") - solo_ns).max(0.0)
}

/// Fits the tier's per-request instruction budget so the deployed clone's
/// service time matches the trace's exclusive time.
///
/// The clone's mean span duration is affine in the budget:
/// `m(ipr) = overhead + cost·ipr`, where the overhead (handler dispatch,
/// in-span syscall time) is small because the measurement frame matches
/// the target's — span against span, not client latency against span.
/// Two probe runs (at the synthesized budget and twice it) identify both
/// coefficients; the fitted budget solves for the target in one step —
/// no iterative descent needed for an affine model.
fn calibrate_tier(
    profile: &mut AppProfile,
    tier: &TierStats,
    cfg: &TraceCloneConfig,
    seed: u64,
) -> TierCalibration {
    let requests = profile.requests.max(1) as f64;
    let ipr1 = profile.instructions_per_request().max(cfg.min_instructions);
    let m1 = measure_clone_ns(profile, stream_seed(seed, 1));

    let mut probe = profile.clone();
    probe.instr.instructions = (ipr1 * 2.0 * requests).round() as u64;
    let m2 = measure_clone_ns(&probe, stream_seed(seed, 2));

    let cost_per_instr = (m2 - m1) / ipr1;
    let fitted_ipr = if cost_per_instr > f64::EPSILON {
        // overhead = m1 - cost·ipr1; target sits at exclusive time above
        // the overhead.
        (ipr1 + (tier.mean_self_ns - m1) / cost_per_instr)
            .clamp(cfg.min_instructions, 1e7)
    } else {
        ipr1
    };
    profile.instr.instructions = (fitted_ipr * requests).round() as u64;
    TierCalibration {
        service: tier.service.clone(),
        target_self_ns: tier.mean_self_ns,
        measured_ns: [m1, m2],
        fitted_ipr,
        cost_per_instr,
    }
}

/// Synthesizes a deployable clone from an ingested workload: one
/// surrogate profile per tier, optionally calibrated against the
/// measured testbed so per-tier service times track the trace.
pub fn clone_from_trace(
    workload: IngestedWorkload,
    cfg: &TraceCloneConfig,
    seed: u64,
) -> TraceClone {
    let freq_ghz = PlatformSpec::a().core.freq_ghz;
    // Per-hop RPC overhead of *this* testbed: a tier's traced exclusive
    // time already includes the original's hop overhead for each
    // downstream call, and the deployed clone will re-add its own. The
    // compute budget must cover only the difference, or mid-tier spans
    // inflate by `hop × calls` and the error compounds up the DAG.
    let hop_ns = if cfg.calibrate && !workload.graph.edges.is_empty() {
        measure_rpc_hop_ns(workload.window, freq_ghz, cfg, stream_seed(seed, 7))
    } else {
        0.0
    };
    let mut profiles = HashMap::new();
    let mut calibration = Vec::new();
    for (ix, tier) in workload.tiers.iter().enumerate() {
        let calls: f64 = workload
            .graph
            .children_of(ix)
            .iter()
            .map(|e| e.calls_per_request)
            .sum();
        let mut effective = tier.clone();
        effective.mean_self_ns = (tier.mean_self_ns - calls * hop_ns).max(1.0);
        let mut profile = synthesize_profile(&effective, workload.window, freq_ghz, cfg);
        if cfg.calibrate {
            calibration.push(calibrate_tier(
                &mut profile,
                &effective,
                cfg,
                stream_seed(seed, 100 + ix as u64),
            ));
        }
        profiles.insert(tier.service.clone(), profile);
    }
    let mut clone = TraceClone { workload, profiles, calibration };
    if cfg.calibrate && clone.workload.graph.services.len() > 1 {
        for round in 0..GRAPH_REFINE_ROUNDS {
            refine_against_deployment(&mut clone, cfg, stream_seed(seed, 9 + round));
        }
    }
    clone
}

/// Measure-and-adjust rounds against the full deployed graph.
const GRAPH_REFINE_ROUNDS: u64 = 2;

/// Fraction of a tier's measured excess absorbed per refinement round.
/// Lowering one tier's budget shifts queueing everywhere else, so the
/// per-tier deltas are coupled; damping keeps the joint update from
/// oscillating.
const GRAPH_REFINE_GAIN: f64 = 0.5;

/// One graph-level measure-and-adjust pass (the §4.5 loop, applied to
/// the whole topology): deploy the calibrated clone, drive it with the
/// trace's arrival model, and compare every tier's *median* span
/// duration against the trace's. Medians, not means: under load the
/// mean is inflated by queueing-burst tails whose size is itself a
/// function of the load's random phase, so mean deltas are noisy and a
/// correction loop built on them hunts instead of converging.
///
/// Single-tier calibration probes each tier unloaded and alone, so it
/// cannot see what the assembled graph adds — downstream queue wait under
/// real load appears in the *parent's* span, and the error compounds up
/// the DAG. A tier's own excess is its total delta minus what its
/// children's deltas explain (`Δp50 − Σ calls·Δp50_child`); the
/// compute budget absorbs that excess through the affine cost fitted
/// during single-tier calibration — no new probe runs needed.
fn refine_against_deployment(clone: &mut TraceClone, cfg: &TraceCloneConfig, seed: u64) {
    let collector = TraceCollector::new(1.0, stream_seed(seed, 1));
    run_trace_clone(
        clone,
        clone.workload.root_qps,
        stream_seed(seed, 2),
        Some(collector.clone()),
    );

    let mut measured: HashMap<String, Vec<u64>> = HashMap::new();
    for s in collector.spans() {
        let name = s.service.strip_prefix("synthetic-").unwrap_or(&s.service);
        measured
            .entry(name.to_string())
            .or_default()
            .push(s.end.saturating_since(s.start).as_nanos());
    }

    let n = clone.workload.graph.services.len();
    let mut delta_total = vec![0.0f64; n];
    let mut have = vec![false; n];
    for (ix, tier) in clone.workload.tiers.iter().enumerate() {
        if let Some(durs) = measured.get_mut(&tier.service) {
            if !durs.is_empty() {
                durs.sort_unstable();
                let p50 = durs[durs.len() / 2] as f64;
                delta_total[ix] = p50 - tier.p50_total_ns;
                have[ix] = true;
            }
        }
    }

    for (ix, tier) in clone.workload.tiers.iter().enumerate() {
        if !have[ix] {
            continue;
        }
        let child_part: f64 = clone
            .workload
            .graph
            .children_of(ix)
            .iter()
            .filter(|e| have[e.to])
            .map(|e| e.calls_per_request * delta_total[e.to])
            .sum();
        let own_excess = GRAPH_REFINE_GAIN * (delta_total[ix] - child_part);
        if std::env::var_os("DITTO_REFINE_DEBUG").is_some() {
            eprintln!(
                "[refine] {}: clone p50 {:.0} trace p50 {:.0} delta {:.0} child {:.0} excess {:.0}",
                tier.service,
                tier.p50_total_ns + delta_total[ix],
                tier.p50_total_ns,
                delta_total[ix],
                child_part,
                own_excess
            );
        }
        let Some(cal) = clone.calibration.iter_mut().find(|c| c.service == tier.service) else {
            continue;
        };
        if cal.cost_per_instr <= f64::EPSILON {
            continue;
        }
        let refined = (cal.fitted_ipr - own_excess / cal.cost_per_instr)
            .clamp(cfg.min_instructions, 1e7);
        cal.target_self_ns = (cal.target_self_ns - own_excess).max(1.0);
        cal.fitted_ipr = refined;
        if let Some(profile) = clone.profiles.get_mut(&tier.service) {
            let requests = profile.requests.max(1) as f64;
            profile.instr.instructions = (refined * requests).round() as u64;
        }
    }
}

/// Port the entry tier of a trace-derived clone listens on.
pub const TRACE_CLONE_PORT: u16 = 9200;

/// Deploys the trace-derived clone onto `nodes` (round-robin, leaves
/// first) and returns `(service, node, port)` per tier, entry first.
pub fn deploy_trace_clone(
    cluster: &mut Cluster,
    nodes: &[NodeId],
    clone: &TraceClone,
    collector: Option<TraceCollector>,
) -> Vec<(String, NodeId, u16)> {
    Ditto::new().clone_graph(
        cluster,
        nodes,
        TRACE_CLONE_PORT,
        &clone.workload.graph,
        &clone.profiles,
        collector,
    )
}

/// Deploys the clone on a fresh cluster (one server node per tier, up to
/// four, plus a client) and drives its entry tier with the trace's own
/// [`ArrivalModel`].
///
/// Workloads whose arrivals were concurrency-limited at the source replay
/// as a closed loop with the observed connection count and think time —
/// a trace records *achieved* rate, and replaying that rate open-loop
/// would park such a clone exactly at its capacity, where open-loop
/// queueing diverges. Everything else replays open-loop at `qps` — pass
/// the workload's own [`IngestedWorkload::root_qps`] to reproduce the
/// trace's offered load, or sweep it.
pub fn run_trace_clone(
    clone: &TraceClone,
    qps: f64,
    seed: u64,
    collector: Option<TraceCollector>,
) -> TraceRunOutcome {
    // A window long relative to the trace's: tail percentiles of a
    // queueing system need thousands of samples before they stop being
    // sampling noise, and the fidelity bands compare p99s.
    run_trace_clone_windowed(clone, qps, seed, collector, SimDuration::from_millis(400))
}

/// [`run_trace_clone`] with an explicit measurement window, for fidelity
/// experiments that compare tail percentiles and need more samples than
/// the default window holds.
pub fn run_trace_clone_windowed(
    clone: &TraceClone,
    qps: f64,
    seed: u64,
    collector: Option<TraceCollector>,
    window: SimDuration,
) -> TraceRunOutcome {
    let tiers = clone.workload.graph.services.len().max(1);
    let server_count = tiers.min(4);
    let mut platforms = vec![PlatformSpec::a(); server_count];
    platforms.push(PlatformSpec::c());
    let client = NodeId(server_count as u32);

    let mut cluster = Cluster::new(platforms, seed);
    let nodes: Vec<NodeId> = (0..server_count as u32).map(NodeId).collect();
    let placements = deploy_trace_clone(&mut cluster, &nodes, clone, collector.clone());
    cluster.run_for(SimDuration::from_millis(10));

    let (entry_node, entry_port) = (placements[0].1, placements[0].2);
    let recorder = Recorder::new();
    // The driver carries the caller's collector too: root spans start at
    // the load generator, so without this the per-tier spans have no
    // trace context to attach to and the clone's own trace is empty.
    let driver_collector = collector;
    match clone.workload.arrival_model() {
        ArrivalModel::Closed { connections, think } => {
            let mut cfg = ClosedLoopConfig::new(entry_node, entry_port, connections);
            cfg.think = think;
            cfg.collector = driver_collector;
            cfg.spawn(&mut cluster, client, &recorder);
        }
        ArrivalModel::Open { .. } => {
            let mut cfg = OpenLoopConfig::new(entry_node, entry_port, qps);
            cfg.collector = driver_collector;
            cfg.spawn(&mut cluster, client, &recorder)
                .expect("valid open-loop config");
        }
    }

    let warmup = SimDuration::from_millis(40);
    cluster.run_for(warmup);
    recorder.start_window(cluster.now());
    cluster.run_for(window);
    recorder.end_window(cluster.now());

    TraceRunOutcome { e2e: recorder.summary(window), placements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_sim::time::SimTime;
    use ditto_trace::ingest::build_workload;
    use ditto_trace::{Span, SpanStatus};

    fn span(trace: u64, id: u64, parent: u64, svc: &str, start: u64, end: u64) -> Span {
        Span {
            trace_id: trace,
            span_id: id,
            parent_id: parent,
            service: svc.into(),
            operation: "op".into(),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            status: SpanStatus::Ok,
        }
    }

    /// A two-tier workload: frontend (20 µs, half spent waiting on the
    /// backend) calling a backend (10 µs) on every request, 50 traces
    /// over 5 ms.
    fn two_tier_workload() -> IngestedWorkload {
        let mut spans = Vec::new();
        for t in 0..50u64 {
            let base = t * 100_000;
            spans.push(span(t + 1, t * 2 + 1, 0, "frontend", base, base + 20_000));
            spans.push(span(t + 1, t * 2 + 2, t * 2 + 1, "backend", base + 5_000, base + 15_000));
        }
        build_workload(spans).expect("well-formed")
    }

    #[test]
    fn synthesized_profile_sizes_instruction_budget_from_self_time() {
        let w = two_tier_workload();
        let tier = w.tier("backend").expect("backend stats");
        assert!((tier.mean_self_ns - 10_000.0).abs() < 1.0, "{}", tier.mean_self_ns);
        let cfg = TraceCloneConfig::default();
        let p = synthesize_profile(tier, w.window, 2.0, &cfg);
        // 10 µs × 2 GHz × 1 IPC = 20k instructions per request.
        assert!((p.instructions_per_request() - 20_000.0).abs() / 20_000.0 < 0.01);
        assert_eq!(p.requests, 50);
        assert_eq!(
            p.threads.network,
            InferredNetworkModel::IoMultiplexing { workers: 1 },
        );
        // The surrogate looks like a real profile to the generator: it
        // has a mix, a data curve and per-request sends.
        assert!(!p.instr.mix().is_empty());
        assert!((p.syscalls.per_request("sendmsg") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn frontend_self_time_excludes_backend_cover() {
        let w = two_tier_workload();
        let f = w.tier("frontend").expect("frontend stats");
        // 20 µs wall minus the 10 µs backend window.
        assert!((f.mean_self_ns - 10_000.0).abs() < 1.0, "{}", f.mean_self_ns);
        assert!((f.mean_total_ns - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn trace_clone_deploys_and_serves() {
        let w = two_tier_workload();
        // Calibration off: this test pins the plumbing (deploy + drive),
        // not the fidelity band — the differential suite covers that.
        let cfg = TraceCloneConfig { calibrate: false, ..TraceCloneConfig::default() };
        let clone = clone_from_trace(w, &cfg, 0xD177);
        assert_eq!(clone.profiles.len(), 2);
        let out = run_trace_clone(&clone, 2_000.0, 0xD177, None);
        assert_eq!(out.placements.len(), 2);
        assert_eq!(out.placements[0].0, "frontend", "entry tier listed first");
        assert!(
            out.e2e.goodput_qps > 1_000.0,
            "clone barely served: {:?}",
            out.e2e
        );
        // End-to-end latency must at least include both tiers' work.
        assert!(out.e2e.latency.mean.as_nanos() > 10_000, "{:?}", out.e2e.latency);
    }

    #[test]
    fn calibration_moves_budget_toward_target() {
        let w = two_tier_workload();
        let cfg = TraceCloneConfig::default();
        let clone = clone_from_trace(w, &cfg, 0xCA1B);
        assert_eq!(clone.calibration.len(), 2);
        for cal in &clone.calibration {
            // The two probes measured something, and the fit stayed in
            // bounds.
            assert!(cal.measured_ns[0] > 0.0 && cal.measured_ns[1] > 0.0);
            assert!(cal.measured_ns[1] > cal.measured_ns[0], "{cal:?}");
            assert!(cal.fitted_ipr >= cfg.min_instructions, "{cal:?}");
        }
    }
}

