//! Generator stages for the accuracy-decomposition study (Figure 9).
//!
//! The paper evaluates Ditto by enabling its mechanisms one at a time:
//! A: skeleton only → B: +syscalls → C: +instruction count → D: +mix →
//! E: +branch behaviour → F: +instruction memory → G: +data memory →
//! H: +data dependencies → I: +fine tuning. Each stage is a flag; the
//! generator degrades to the paper's described fallback when a flag is
//! off (e.g. without D, the body is `add rax, rax` filler; without G, all
//! memory ops hit the smallest working set).

use serde::{Deserialize, Serialize};

/// A set of enabled generator mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratorStages {
    /// Reproduce the syscall distribution (B).
    pub syscalls: bool,
    /// Match the dynamic instruction count (C).
    pub instr_count: bool,
    /// Sample the profiled instruction mix (D).
    pub instr_mix: bool,
    /// Clone branch taken/transition rates (E).
    pub branch: bool,
    /// Synthesise instruction working sets (F).
    pub instr_mem: bool,
    /// Synthesise data working sets and shared accesses (G).
    pub data_mem: bool,
    /// Assign registers from dependency distances and add pointer chasing (H).
    pub data_dep: bool,
    /// Run the feedback fine-tuner (I).
    pub tune: bool,
}

impl GeneratorStages {
    /// Stage A: skeleton only.
    pub fn skeleton_only() -> Self {
        GeneratorStages {
            syscalls: false,
            instr_count: false,
            instr_mix: false,
            branch: false,
            instr_mem: false,
            data_mem: false,
            data_dep: false,
            tune: false,
        }
    }

    /// Everything enabled (the shipping configuration).
    pub fn all() -> Self {
        GeneratorStages {
            syscalls: true,
            instr_count: true,
            instr_mix: true,
            branch: true,
            instr_mem: true,
            data_mem: true,
            data_dep: true,
            tune: true,
        }
    }

    /// The cumulative ladder A..=I in Figure 9's order.
    pub fn ladder() -> Vec<(&'static str, GeneratorStages)> {
        let mut s = Self::skeleton_only();
        let mut out = vec![("A:Skeleton", s)];
        s.syscalls = true;
        out.push(("B:Syscall", s));
        s.instr_count = true;
        out.push(("C:#insts", s));
        s.instr_mix = true;
        out.push(("D:Inst. mix", s));
        s.branch = true;
        out.push(("E:Branch", s));
        s.instr_mem = true;
        out.push(("F:I-mem", s));
        s.data_mem = true;
        out.push(("G:D-mem", s));
        s.data_dep = true;
        out.push(("H:Data dep.", s));
        s.tune = true;
        out.push(("I:Tune", s));
        out
    }
}

impl Default for GeneratorStages {
    fn default() -> Self {
        Self::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotone() {
        let ladder = GeneratorStages::ladder();
        assert_eq!(ladder.len(), 9);
        assert_eq!(ladder[0].1, GeneratorStages::skeleton_only());
        assert_eq!(ladder[8].1, GeneratorStages::all());
        let count = |s: GeneratorStages| {
            [s.syscalls, s.instr_count, s.instr_mix, s.branch, s.instr_mem, s.data_mem, s.data_dep, s.tune]
                .iter()
                .filter(|&&b| b)
                .count()
        };
        for w in ladder.windows(2) {
            assert_eq!(count(w[1].1), count(w[0].1) + 1, "each rung adds one mechanism");
        }
    }
}
