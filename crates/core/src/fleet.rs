//! Work-stealing parallel experiment fleet.
//!
//! Every evaluation figure sweeps some slice of the service × platform ×
//! load × seed matrix; run serially, the full matrix is minutes of
//! wall-clock. The fleet fans a `Vec<`[`ExperimentSpec`]`>` out across
//! threads, each experiment owning an isolated [`Cluster`] seeded from an
//! independent splitmix64-derived stream (`stream_seed(seed, index)`),
//! and merges [`RunOutcome`]s back **in spec order** — so results are
//! bit-identical regardless of `RAYON_NUM_THREADS` or steal interleaving.
//!
//! On top of the raw runner sit two higher layers:
//!
//! - [`run_fidelity_matrix`] — the Figure 5/7 shape: for every (service,
//!   platform, load, seed) cell, run the original, the untuned clone and
//!   the fine-tuned clone, and report per-metric relative errors.
//! - [`ProfileCache`] — memoizes profiling runs and tuning results keyed
//!   by (service, platform, load, seed), so tuner iterations and repeated
//!   benches never redo a profiling pass they have already paid for.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ditto_app::service::ServiceSpec;
use ditto_hw::platform::PlatformSpec;
use ditto_kernel::{Cluster, NodeId};
use ditto_sim::executor::SimExecutor;
use ditto_sim::rng::stream_seed;
use ditto_sim::time::SimDuration;
use parking_lot::Mutex;
use rayon::prelude::*;

use ditto_workload::LoadPlan;

use crate::clone::Ditto;
use crate::harness::{LoadKind, RunOutcome, ScenarioOutcome, Testbed};
use crate::scale::RoleProfiles;
use crate::tuner::{FineTuner, TuneResult};

/// A shareable service deployment: receives the cluster (for dataset and
/// file setup) and the server node, returns the spec to deploy. `Arc`'d
/// so one deployment can fan out across many experiments and threads.
pub type DeployFn = Arc<dyn Fn(&mut Cluster, NodeId) -> ServiceSpec + Send + Sync>;

/// One cell of work for the fleet: a service under a load on a testbed.
#[derive(Clone)]
pub struct ExperimentSpec {
    /// Human-readable label (service/load names) carried into reports.
    pub label: String,
    /// The two-machine testbed; its `seed` is the *base* seed — the fleet
    /// XORs in a splitmix64 stream per experiment index.
    pub testbed: Testbed,
    /// The load to drive.
    pub load: LoadKind,
    /// Whether to attach the full Ditto profilers.
    pub profile: bool,
    /// Service deployment.
    pub deploy: DeployFn,
}

impl ExperimentSpec {
    /// Creates a spec with profiling off.
    pub fn new(
        label: impl Into<String>,
        testbed: Testbed,
        load: LoadKind,
        deploy: DeployFn,
    ) -> Self {
        ExperimentSpec { label: label.into(), testbed, load, profile: false, deploy }
    }

    /// Runs this experiment on its own isolated cluster with the given
    /// effective seed.
    fn run(&self, seed: u64) -> RunOutcome {
        let bed = Testbed { seed, ..self.testbed.clone() };
        let deploy = Arc::clone(&self.deploy);
        bed.run(move |c, n| deploy(c, n), &self.load, self.profile)
    }
}

impl std::fmt::Debug for ExperimentSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentSpec")
            .field("label", &self.label)
            .field("seed", &self.testbed.seed)
            .field("load", &self.load)
            .field("profile", &self.profile)
            .finish_non_exhaustive()
    }
}

/// The parallel experiment runner.
///
/// `threads: None` honours `RAYON_NUM_THREADS` (rayon's convention);
/// `Some(n)` pins the worker count, which is how the determinism tests
/// sweep 1/2/8 workers inside one process without racing on env vars.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fleet {
    /// Worker count override.
    pub threads: Option<usize>,
}

impl Fleet {
    /// A fleet using the ambient rayon thread count.
    pub fn new() -> Self {
        Fleet::default()
    }

    /// A fleet pinned to `n` workers.
    pub fn with_threads(n: usize) -> Self {
        Fleet { threads: Some(n) }
    }

    /// The worker count the next run will use.
    pub fn worker_count(&self) -> usize {
        self.threads.unwrap_or_else(rayon::current_num_threads)
    }

    /// Order-preserving parallel map: applies `f(index, item)` to every
    /// item with work stealing, returning results in input order. All
    /// fleet entry points bottom out here, so the "bit-identical at any
    /// thread count" property is inherited by construction: each item is
    /// pure in (index, item), and the merge ignores completion order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.worker_count())
            .build()
            .expect("fleet thread pool");
        pool.install(|| {
            let indexed: Vec<usize> = (0..items.len()).collect();
            indexed.par_iter().map(|&i| f(i, &items[i])).collect()
        })
    }

    /// Runs every experiment, each on an isolated cluster whose seed is
    /// the spec's base seed XOR the splitmix64 stream of its index, and
    /// returns outcomes in spec order.
    pub fn run(&self, specs: &[ExperimentSpec]) -> Vec<RunOutcome> {
        self.map(specs, |i, spec| spec.run(stream_seed(spec.testbed.seed, i as u64)))
    }

    /// Runs every scenario cell (a service under a [`LoadPlan`]) with
    /// the same isolation and seed-stream discipline as [`Fleet::run`]:
    /// outcomes come back in spec order, bit-identical at any worker
    /// count.
    pub fn run_scenarios(&self, specs: &[ScenarioSpec]) -> Vec<ScenarioOutcome> {
        self.map(specs, |i, spec| {
            let bed = Testbed {
                seed: stream_seed(spec.testbed.seed, i as u64),
                ..spec.testbed.clone()
            };
            let deploy = Arc::clone(&spec.deploy);
            bed.run_scenario(move |c, n| deploy(c, n), &spec.plan)
        })
    }
}

/// One scenario cell of work for the fleet: a service played through a
/// traffic scenario on a testbed.
#[derive(Clone)]
pub struct ScenarioSpec {
    /// Human-readable label carried into reports.
    pub label: String,
    /// The two-machine testbed (its `seed` is the base seed — the fleet
    /// XORs in a splitmix64 stream per spec index).
    pub testbed: Testbed,
    /// The traffic scenario to play.
    pub plan: LoadPlan,
    /// Service deployment.
    pub deploy: DeployFn,
}

impl std::fmt::Debug for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioSpec")
            .field("label", &self.label)
            .field("seed", &self.testbed.seed)
            .field("plan", &self.plan.name)
            .finish_non_exhaustive()
    }
}

/// Cache key for memoized profiling/tuning work.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Service name.
    pub service: String,
    /// Platform name of the server under test.
    pub platform: String,
    /// Canonical rendering of the load point.
    pub load: String,
    /// Experiment seed.
    pub seed: u64,
}

impl CacheKey {
    /// Builds a key; the load is rendered canonically via `Debug` (exact
    /// for the integer/float fields `LoadKind` carries).
    pub fn new(service: &str, platform: &str, load: &LoadKind, seed: u64) -> Self {
        CacheKey {
            service: service.to_string(),
            platform: platform.to_string(),
            load: format!("{load:?}"),
            seed,
        }
    }
}

/// Memoizes the two expensive, reusable artifacts of a fidelity run:
/// the profiling pass (full-instrumentation original run) and the tuning
/// loop's result, both keyed by (service, platform, load, seed).
///
/// Values are deterministic functions of their key, so a concurrent miss
/// on the same key may compute twice but always computes the same value;
/// the first insert wins and later runs hit. Hit/miss counters are
/// best-effort under races and meant for tests and reports.
#[derive(Debug, Default)]
pub struct ProfileCache {
    profiles: Mutex<HashMap<CacheKey, Arc<RunOutcome>>>,
    tunes: Mutex<HashMap<CacheKey, Arc<(Ditto, TuneResult)>>>,
    roles: Mutex<HashMap<CacheKey, Arc<RoleProfiles>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProfileCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn memo<V>(
        map: &Mutex<HashMap<CacheKey, Arc<V>>>,
        hits: &AtomicU64,
        misses: &AtomicU64,
        key: &CacheKey,
        compute: impl FnOnce() -> V,
    ) -> Arc<V> {
        if let Some(v) = map.lock().get(key) {
            hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(v);
        }
        misses.fetch_add(1, Ordering::Relaxed);
        // Compute outside the lock: profiling runs take milliseconds and
        // must not serialise the whole fleet behind one mutex.
        let v = Arc::new(compute());
        Arc::clone(map.lock().entry(key.clone()).or_insert(v))
    }

    /// Returns the cached profiling run for `key`, computing it on miss.
    pub fn profiled(&self, key: &CacheKey, compute: impl FnOnce() -> RunOutcome) -> Arc<RunOutcome> {
        Self::memo(&self.profiles, &self.hits, &self.misses, key, compute)
    }

    /// Returns the cached tuning result for `key`, computing it on miss.
    pub fn tuned(
        &self,
        key: &CacheKey,
        compute: impl FnOnce() -> (Ditto, TuneResult),
    ) -> Arc<(Ditto, TuneResult)> {
        Self::memo(&self.tunes, &self.hits, &self.misses, key, compute)
    }

    /// Returns the cached per-(role, platform) tier profiles for `key`,
    /// computing them on miss. This is what keeps heterogeneous capacity
    /// sweeps cache-hot: the key's platform field names the *assignment
    /// mix* of the profiling tier, so every candidate configuration that
    /// draws on the same hardware pools shares one profiling run.
    pub fn role_profiles(
        &self,
        key: &CacheKey,
        compute: impl FnOnce() -> RoleProfiles,
    ) -> Arc<RoleProfiles> {
        Self::memo(&self.roles, &self.hits, &self.misses, key, compute)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of memoized entries (profiles + tunes + role profiles).
    pub fn len(&self) -> usize {
        self.profiles.lock().len() + self.tunes.lock().len() + self.roles.lock().len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One service's row in the fidelity matrix.
#[derive(Clone)]
pub struct ServiceEntry {
    /// Service name (cache key component and report label).
    pub name: String,
    /// Deployment of the original service.
    pub deploy: DeployFn,
    /// The load the clone is profiled and tuned at (the paper profiles at
    /// medium load only).
    pub profile_load: (String, LoadKind),
    /// The load points every cell is validated at.
    pub loads: Vec<(String, LoadKind)>,
}

/// Matrix-wide configuration.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Server platforms to validate on.
    pub platforms: Vec<PlatformSpec>,
    /// Client (load generator) platform.
    pub client: PlatformSpec,
    /// Base seeds; each (service, platform, seed) triple is profiled and
    /// tuned once and validated at every load.
    pub seeds: Vec<u64>,
    /// Warmup before each measurement window.
    pub warmup: SimDuration,
    /// Measurement window length.
    pub window: SimDuration,
    /// Fine-tuner applied at the profiling load.
    pub tuner: FineTuner,
    /// Worker count override (see [`Fleet`]).
    pub threads: Option<usize>,
    /// Per-cell cluster execution strategy (sequential by default — the
    /// fleet already parallelises across cells; an in-cell gang helps
    /// when cells are few and clusters wide).
    pub executor: SimExecutor,
}

impl MatrixConfig {
    /// Platform-A-only config with the default testbed windows — the
    /// Figure 5 shape.
    pub fn platform_a(seeds: Vec<u64>) -> Self {
        MatrixConfig {
            platforms: vec![PlatformSpec::a()],
            client: PlatformSpec::c(),
            seeds,
            warmup: SimDuration::from_millis(40),
            window: SimDuration::from_millis(200),
            tuner: FineTuner { max_iterations: 4, tolerance_pct: 8.0, gain: 0.6 },
            threads: None,
            executor: SimExecutor::default(),
        }
    }

    /// A scaled-down variant for CI smoke runs: shorter windows and a
    /// 2-iteration tuner. Cuts wall-clock ~3× at some fidelity cost;
    /// still deterministic.
    pub fn quick(mut self) -> Self {
        self.warmup = SimDuration::from_millis(20);
        self.window = SimDuration::from_millis(80);
        self.tuner.max_iterations = 2;
        self
    }
}

/// One (service, platform, load, seed) cell: original vs untuned clone vs
/// fine-tuned clone.
#[derive(Clone)]
pub struct FidelityCell {
    /// Service name.
    pub service: String,
    /// Server platform name.
    pub platform: String,
    /// Load point name.
    pub load: String,
    /// Base seed of the cell's group.
    pub seed: u64,
    /// The original service's measured outcome.
    pub original: RunOutcome,
    /// The untuned clone's outcome (generator defaults, no feedback).
    pub untuned: RunOutcome,
    /// The fine-tuned clone's outcome.
    pub tuned: RunOutcome,
}

impl FidelityCell {
    /// Per-metric relative errors (%) of the untuned clone vs the original.
    pub fn untuned_errors(&self) -> Vec<(&'static str, f64)> {
        self.original.metrics.errors_vs(&self.untuned.metrics)
    }

    /// Per-metric relative errors (%) of the tuned clone vs the original.
    pub fn tuned_errors(&self) -> Vec<(&'static str, f64)> {
        self.original.metrics.errors_vs(&self.tuned.metrics)
    }

    /// Worst per-metric relative error (%) of the tuned clone.
    pub fn worst_tuned_error(&self) -> f64 {
        self.tuned_errors().iter().map(|&(_, e)| e).fold(0.0, f64::max)
    }
}

/// The assembled fidelity matrix, cells in (service, platform, seed,
/// load) order.
#[derive(Clone, Default)]
pub struct FidelityMatrix {
    /// All cells.
    pub cells: Vec<FidelityCell>,
}

impl FidelityMatrix {
    /// Mean per-metric tuned-clone error across all cells, in the metric
    /// order of `MetricSet::errors_vs`.
    pub fn mean_tuned_errors(&self) -> Vec<(&'static str, f64)> {
        let mut sums: Vec<(&'static str, f64)> = Vec::new();
        for cell in &self.cells {
            for (i, (name, e)) in cell.tuned_errors().into_iter().enumerate() {
                if sums.len() <= i {
                    sums.push((name, 0.0));
                }
                sums[i].1 += e;
            }
        }
        let n = self.cells.len().max(1) as f64;
        for s in &mut sums {
            s.1 /= n;
        }
        sums
    }

    /// The cell with the worst tuned-clone error, if any.
    pub fn worst_cell(&self) -> Option<&FidelityCell> {
        self.cells
            .iter()
            .max_by(|a, b| a.worst_tuned_error().total_cmp(&b.worst_tuned_error()))
    }
}

/// Runs the full fidelity matrix: every (service, platform, seed) group
/// is profiled and fine-tuned at the service's profiling load (through
/// `cache`, so repeated invocations skip both), then validated at every
/// load point with the original, the untuned clone and the tuned clone
/// side by side. Groups fan out across the fleet; cells come back in
/// deterministic (service, platform, seed, load) order.
pub fn run_fidelity_matrix(
    services: &[ServiceEntry],
    cfg: &MatrixConfig,
    cache: &ProfileCache,
) -> FidelityMatrix {
    let mut groups: Vec<(&ServiceEntry, &PlatformSpec, u64)> = Vec::new();
    for svc in services {
        for platform in &cfg.platforms {
            for &seed in &cfg.seeds {
                groups.push((svc, platform, seed));
            }
        }
    }

    let fleet = Fleet { threads: cfg.threads };
    let cells: Vec<Vec<FidelityCell>> = fleet.map(&groups, |_, &(svc, platform, seed)| {
        let bed = Testbed {
            server: platform.clone(),
            client: cfg.client.clone(),
            seed,
            warmup: cfg.warmup,
            window: cfg.window,
            obs: Default::default(),
            executor: cfg.executor,
        };
        let (profile_name, profile_load) = &svc.profile_load;
        let key = CacheKey::new(&svc.name, &platform.name, profile_load, seed);

        let deploy = Arc::clone(&svc.deploy);
        let profiled = cache.profiled(&key, || {
            let deploy = Arc::clone(&deploy);
            bed.run(move |c, n| deploy(c, n), profile_load, true)
        });
        let profile = profiled
            .profile
            .as_ref()
            .unwrap_or_else(|| panic!("cache returned unprofiled run for {profile_name}"));

        let tuned_arc = cache.tuned(&key, || {
            bed.tune_clone(&Ditto::new(), profile, profile_load, &cfg.tuner)
        });
        let (tuned_ditto, _) = &*tuned_arc;
        let untuned_ditto = Ditto::new();

        svc.loads
            .iter()
            .map(|(load_name, load)| {
                let deploy = Arc::clone(&svc.deploy);
                let original = bed.run(move |c, n| deploy(c, n), load, false);
                let untuned = bed.run_clone(&untuned_ditto, profile, load);
                let tuned = bed.run_clone(tuned_ditto, profile, load);
                FidelityCell {
                    service: svc.name.clone(),
                    platform: platform.name.clone(),
                    load: load_name.clone(),
                    seed,
                    original,
                    untuned,
                    tuned,
                }
            })
            .collect()
    });

    FidelityMatrix { cells: cells.into_iter().flatten().collect() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_distinguishes_every_dimension() {
        let load_a = LoadKind::OpenLoop { qps: 100.0, connections: 2 };
        let load_b = LoadKind::OpenLoop { qps: 200.0, connections: 2 };
        let base = CacheKey::new("svc", "A", &load_a, 1);
        assert_eq!(base, CacheKey::new("svc", "A", &load_a, 1));
        assert_ne!(base, CacheKey::new("svc2", "A", &load_a, 1));
        assert_ne!(base, CacheKey::new("svc", "B", &load_a, 1));
        assert_ne!(base, CacheKey::new("svc", "A", &load_b, 1));
        assert_ne!(base, CacheKey::new("svc", "A", &load_a, 2));
    }

    #[test]
    fn fleet_map_preserves_order() {
        let items: Vec<u64> = (0..32).collect();
        for threads in [1, 3, 8] {
            let out = Fleet::with_threads(threads).map(&items, |i, &x| x * 10 + i as u64);
            assert_eq!(out, items.iter().map(|&x| x * 11).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_count_prefers_override() {
        assert_eq!(Fleet::with_threads(5).worker_count(), 5);
        assert!(Fleet::new().worker_count() >= 1);
    }
}
