//! Clone-based capacity planning over heterogeneous tiers.
//!
//! Given a traffic scenario and a set of candidate tier configurations
//! (shard count × replication factor × platform mix), the planner runs
//! each candidate as a *clone* — the "what-if without the real cluster"
//! use case — attaches per-platform cost weights, and picks the cheapest
//! configuration whose p99 meets the SLO. This module holds the pure
//! parts the `capacity_plan` bench drives: the cost model, the Pareto
//! pruning and selection rules, and the closed-form M/M/c sanity model
//! whose monotonicity the property suite pins.

use ditto_app::sharded::ShardedTierSpec;
use serde::Serialize;

/// Relative cost per node-hour of each platform.
#[derive(Debug, Clone, Serialize)]
pub struct CostModel {
    /// `(platform name, relative $/node-hour)` rows.
    pub weights: Vec<(String, f64)>,
}

impl CostModel {
    /// Cost weights for the paper's Table 1 fleet, anchored at Platform
    /// A = 1.00 (22-core Skylake, SSD, 10 GbE). The 10-core Haswell B
    /// box at 0.55 and the 4-core E3 C box at 0.30 roughly track core
    /// count and I/O generation; the *shape* of the trade-off, not the
    /// absolute dollars, is what the planner exercises.
    pub fn table1() -> Self {
        CostModel {
            weights: vec![
                ("A".to_string(), 1.0),
                ("B".to_string(), 0.55),
                ("C".to_string(), 0.30),
            ],
        }
    }

    /// The relative cost of one node of `platform`.
    ///
    /// # Panics
    ///
    /// Panics on a platform the model has no weight for.
    pub fn node_cost(&self, platform: &str) -> f64 {
        self.weights
            .iter()
            .find(|(n, _)| n == platform)
            .map(|&(_, w)| w)
            .unwrap_or_else(|| panic!("no cost weight for platform {platform}"))
    }

    /// Total relative cost of a tier: every replica node plus the router
    /// node, each priced at its assignment's platform.
    pub fn tier_cost(&self, spec: &ShardedTierSpec) -> f64 {
        let mut cost = 0.0;
        for shard in 0..spec.shards {
            cost += self.node_cost(&spec.assignment.replica_platform(shard).name)
                * f64::from(spec.replicas);
        }
        cost + self.node_cost(&spec.assignment.router_platform().name)
    }
}

/// One swept configuration with its clone-measured (or modeled)
/// performance.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlanPoint {
    /// Human-readable configuration label (unique per sweep).
    pub label: String,
    /// Shard count.
    pub shards: u32,
    /// Replicas per shard.
    pub replicas: u32,
    /// Platform mix description (e.g. `B|A` for a split pool).
    pub mix: String,
    /// Relative cost of the configuration (see [`CostModel`]).
    pub cost: f64,
    /// p99 latency in nanoseconds.
    pub p99_ns: u64,
    /// Goodput in requests per second.
    pub goodput_qps: f64,
}

/// Indices of the Pareto frontier on `(cost, p99)`: a point survives
/// unless some other point is at least as cheap *and* at least as fast,
/// and strictly better on one axis (exact duplicates both survive).
/// Order-stable: surviving indices come back in input order.
pub fn prune_dominated(points: &[PlanPoint]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points.iter().enumerate().any(|(j, q)| {
                j != i
                    && q.cost <= points[i].cost
                    && q.p99_ns <= points[i].p99_ns
                    && (q.cost < points[i].cost || q.p99_ns < points[i].p99_ns)
            })
        })
        .collect()
}

/// The index of the cheapest point whose p99 meets `slo_p99_ns`. Ties
/// break on lower p99, then label — so the winning *configuration* is a
/// pure function of the point set, independent of sweep order, and
/// Pareto pruning can never change it (the winner is on the frontier:
/// anything dominating it would be at least as cheap and as fast, and
/// would win instead).
pub fn cheapest_meeting_slo(points: &[PlanPoint], slo_p99_ns: u64) -> Option<usize> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.p99_ns <= slo_p99_ns)
        .min_by(|(_, a), (_, b)| {
            a.cost.total_cmp(&b.cost).then(a.p99_ns.cmp(&b.p99_ns)).then(a.label.cmp(&b.label))
        })
        .map(|(i, _)| i)
}

/// Closed-form sanity model of a sharded tier's p99: `shards`
/// independent M/M/c pools (`c = replicas`) each fed `qps / shards`
/// Poisson arrivals with exponential service of mean `service_ns`; the
/// p99 approximation is `ln(100) × (service + mean queueing wait)`.
///
/// This is not the simulator — it is the cheap pre-ranking model the
/// capacity planner uses to reason about obviously-infeasible
/// configurations, and its one load-bearing property — adding replicas
/// at fixed load never worsens p99 — is pinned by the property suite.
/// Saturated pools (ρ ≥ 1) return a divergence sentinel that grows with
/// ρ, and stable pools are clamped strictly below it, so the ordering
/// stays monotone across the stability boundary.
pub fn modeled_p99_ns(qps: f64, shards: u32, replicas: u32, service_ns: f64) -> f64 {
    assert!(shards >= 1 && replicas >= 1, "tier needs at least one pool and one server");
    assert!(qps >= 0.0 && service_ns > 0.0, "load and service time must be sane");
    let lambda = qps / f64::from(shards); // per-pool arrivals, 1/s
    let mu = 1e9 / service_ns; // per-server service rate, 1/s
    let c = f64::from(replicas);
    let rho = lambda / (c * mu);
    let ln100 = 100f64.ln();
    if rho >= 1.0 {
        // Unstable queue: no steady state. ~1e18 ns × ρ stays ordered in
        // ρ and strictly above every stable pool's clamp below.
        return 1e18 * rho;
    }
    let offered = lambda / mu; // Erlang offered load a = λ/μ
    let wait_s = erlang_c(replicas, offered) / (c * mu - lambda);
    let p99 = ln100 * (service_ns + wait_s * 1e9);
    p99.min(1e17)
}

/// Erlang-C: the probability an arrival queues in an M/M/c pool at
/// offered load `a = λ/μ < c`, via the numerically stable Erlang-B
/// recursion `B(k) = a·B(k−1) / (k + a·B(k−1))`.
fn erlang_c(c: u32, a: f64) -> f64 {
    let mut b = 1.0; // Erlang-B with zero servers
    for k in 1..=c {
        b = a * b / (f64::from(k) + a * b);
    }
    let cf = f64::from(c);
    cf * b / (cf - a * (1.0 - b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_app::sharded::PlatformAssignment;
    use ditto_hw::platform::PlatformSpec;

    fn point(label: &str, cost: f64, p99_ns: u64) -> PlanPoint {
        PlanPoint {
            label: label.into(),
            shards: 2,
            replicas: 1,
            mix: "A".into(),
            cost,
            p99_ns,
            goodput_qps: 1000.0,
        }
    }

    #[test]
    fn table1_costs_order_platforms_by_size() {
        let m = CostModel::table1();
        assert!(m.node_cost("A") > m.node_cost("B"));
        assert!(m.node_cost("B") > m.node_cost("C"));
    }

    #[test]
    fn tier_cost_prices_each_pool_at_its_platform() {
        let spec = ShardedTierSpec {
            shards: 4,
            replicas: 2,
            assignment: PlatformAssignment::split(PlatformSpec::b(), 2, PlatformSpec::a())
                .with_router(PlatformSpec::c()),
            ..ShardedTierSpec::default()
        };
        let m = CostModel::table1();
        // 2 shards × 2 replicas on B, 2 × 2 on A, router on C.
        let expected = 4.0 * 0.55 + 4.0 * 1.0 + 0.30;
        assert!((m.tier_cost(&spec) - expected).abs() < 1e-9);
    }

    #[test]
    fn pruning_keeps_exactly_the_frontier() {
        let pts = vec![
            point("cheap_slow", 1.0, 900),
            point("dominated", 2.0, 900), // same p99, dearer than cheap_slow
            point("mid", 2.0, 500),
            point("fast_dear", 4.0, 200),
            point("strictly_worse", 5.0, 600), // mid beats it on both axes
        ];
        let kept = prune_dominated(&pts);
        assert_eq!(kept, vec![0, 2, 3]);
    }

    #[test]
    fn cheapest_meeting_slo_trades_cost_for_feasibility() {
        let pts = vec![
            point("cheap_slow", 1.0, 900),
            point("mid", 2.0, 500),
            point("fast_dear", 4.0, 200),
        ];
        assert_eq!(cheapest_meeting_slo(&pts, 1_000), Some(0));
        assert_eq!(cheapest_meeting_slo(&pts, 600), Some(1));
        assert_eq!(cheapest_meeting_slo(&pts, 300), Some(2));
        assert_eq!(cheapest_meeting_slo(&pts, 100), None);
    }

    #[test]
    fn equal_cost_ties_break_on_p99_then_label() {
        let pts = vec![point("b", 1.0, 500), point("a", 1.0, 500), point("c", 1.0, 400)];
        // c is fastest at equal cost; between a and b the label decides.
        assert_eq!(cheapest_meeting_slo(&pts, 1_000), Some(2));
        let no_c = &pts[..2];
        assert_eq!(cheapest_meeting_slo(no_c, 1_000), Some(1), "label tie-break");
    }

    #[test]
    fn modeled_p99_decreases_in_replicas_across_saturation() {
        // 20k qps over 2 pools, 100 µs service: 1 replica is saturated
        // (ρ = 1.0), 2 replicas are at ρ = 0.5.
        let qps = 20_000.0;
        let service = 100_000.0;
        let mut last = f64::INFINITY;
        for replicas in 1..=8 {
            let p99 = modeled_p99_ns(qps, 2, replicas, service);
            assert!(
                p99 <= last,
                "p99 must not rise with replicas: {replicas} gave {p99} after {last}"
            );
            last = p99;
        }
        assert!(modeled_p99_ns(qps, 2, 1, service) >= 1e18, "saturated sentinel");
        assert!(modeled_p99_ns(qps, 2, 2, service) < 1e17, "stable pool below the clamp");
    }

    #[test]
    fn modeled_p99_approaches_service_floor_when_idle() {
        let p99 = modeled_p99_ns(10.0, 4, 4, 100_000.0);
        let floor = 100f64.ln() * 100_000.0;
        assert!((p99 - floor).abs() / floor < 0.01, "idle tier ~ ln(100)·service: {p99}");
    }
}
