//! Cluster-scale harness for the sharded service tier: deploy an
//! N-shard × R-replica pool behind the consistent-hash router on a
//! many-node cluster, drive it open-loop, profile the two service
//! *roles* (router, replica) and re-assemble a cloned tier from them.
//!
//! Scaling out does not change Ditto's unit of work: a sharded tier has
//! exactly two distinct binaries — the router and the backend replica —
//! so the pipeline profiles each *(role, platform)* pair once and stamps
//! the clones out across the pool (a heterogeneous pool multiplies the
//! replica role by its distinct hardware platforms, never by node
//! count). Tier topology (shard count, replication factor, ring
//! parameters, replica policy) is treated like the traced RPC graph in
//! multi-tier cloning: observable structure that is reproduced exactly,
//! not inferred from counters.

use std::sync::Arc;

use ditto_app::admission::AdmissionStats;
use ditto_app::resilience::RetryBudgetStats;
use ditto_app::sharded::{
    deploy_sharded_tier, deploy_sharded_tier_with, RouterHandler, RouterStats, ServiceSpecParts,
    ShardedTier, ShardedTierSpec, ROUTER_RPC_BYTES,
};
pub use ditto_app::sharded::PlatformAssignment;
use ditto_hw::platform::PlatformSpec;
use ditto_kernel::{Cluster, FaultPlan, NodeId};
use ditto_obs::{selfprof, ObsConfig, ObsReport, ObsSink};
use ditto_profile::{AppProfile, MetricSet, Profiler};
use ditto_sim::executor::SimExecutor;
use ditto_sim::stats::LatencyHistogram;
use ditto_sim::time::SimDuration;
use ditto_workload::{
    ControlSample, ControlTrajectory, LoadAggregate, LoadPlan, LoadSummary, OpenLoopConfig,
    TierRecorder,
};

use crate::autoscaler::{Autoscaler, AutoscalerConfig};
use crate::body_gen::generate_body_params;
use crate::clone::Ditto;
use crate::harness::{LoadKind, Testbed};
use crate::skeleton::generate_network_model;
use crate::tuner::{FineTuner, TuneResult};

/// The per-(role, platform) profiles a sharded tier reduces to.
///
/// The router is one binary on one box, but replicas — while all running
/// the same binary — may sit on different hardware pools on a mixed
/// tier, and a profile is a measurement of a *(binary, platform)* pair,
/// not of the binary alone (the same code has a different IPC, miss
/// rates and syscall timing on a Haswell HDD box than on a Skylake SSD
/// one). So the replica role carries one profile per distinct pool
/// platform, keyed by platform name in first-shard order.
#[derive(Debug, Clone)]
pub struct RoleProfiles {
    /// The consistent-hash router's profile (on its router platform).
    pub router: AppProfile,
    /// One replica profile per distinct pool platform:
    /// `(platform name, profile)`, in first-shard order.
    pub replica: Vec<(String, AppProfile)>,
}

impl RoleProfiles {
    /// The replica profile measured on `platform`.
    ///
    /// # Panics
    ///
    /// Panics when the tier was never profiled on that platform.
    pub fn replica_for(&self, platform: &str) -> &AppProfile {
        self.replica
            .iter()
            .find(|(n, _)| n == platform)
            .map(|(_, p)| p)
            .unwrap_or_else(|| panic!("no replica profile for platform {platform}"))
    }

    /// Convenience for homogeneous tiers: the sole replica profile.
    ///
    /// # Panics
    ///
    /// Panics when the pool spans several platforms — call
    /// [`RoleProfiles::replica_for`] instead.
    pub fn sole_replica(&self) -> &AppProfile {
        assert_eq!(self.replica.len(), 1, "pool spans {} platforms", self.replica.len());
        &self.replica[0].1
    }
}

/// Per-role generation pipelines: fine-tuning is per binary (§4.5) *per
/// platform* — knobs calibrated against Platform-A counters reproduce
/// Platform-A behaviour, so a mixed pool needs one tuned replica
/// pipeline per hardware pool (sharing knobs across platforms breaks
/// the band the same way sharing them across roles did, DESIGN §10).
#[derive(Debug, Clone, Default)]
pub struct TierPipeline {
    /// Pipeline generating the synthetic router.
    pub router: Ditto,
    /// Per-platform replica pipelines `(platform name, pipeline)`. A
    /// platform with no entry falls back to knob defaults, so
    /// [`TierPipeline::new`] still means "everything untuned".
    pub replica: Vec<(String, Ditto)>,
}

impl TierPipeline {
    /// Both roles at stage/knob defaults on every platform.
    pub fn new() -> Self {
        Self::default()
    }

    /// The replica pipeline tuned for `platform` (knob defaults when the
    /// platform was never tuned).
    pub fn replica_for(&self, platform: &str) -> Ditto {
        self.replica
            .iter()
            .find(|(n, _)| n == platform)
            .map(|(_, d)| d.clone())
            .unwrap_or_default()
    }
}

/// The measured outcome of one sharded-tier run.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// Client-facing (end-to-end through the router) load summary.
    pub e2e: LoadSummary,
    /// Bucket-exact end-to-end latency histogram.
    pub histogram: LatencyHistogram,
    /// Per-shard `(name, summary)` rows from the router-side observer.
    pub shards: Vec<(String, LoadSummary)>,
    /// Exact roll-up of all shard recorders (server-side tier view).
    pub rollup: LoadSummary,
    /// Per-platform roll-up of the shard recorders: `(platform name,
    /// summary)` in first-shard order — one row on homogeneous tiers,
    /// one per hardware pool on mixed ones.
    pub platforms: Vec<(String, LoadSummary)>,
    /// Router placement statistics at the end of the run.
    pub router: RouterStats,
    /// Hardware metrics of the router process over the window.
    pub router_metrics: MetricSet,
    /// Per-role profiles, when profiling was requested.
    pub profiles: Option<RoleProfiles>,
    /// Instructions replayed analytically by the fast path.
    pub fastforward_iterations: u64,
    /// Observability report, when [`ShardedTestbed::obs`] enabled any.
    pub obs: Option<ObsReport>,
}

/// A many-node testbed for a sharded tier: `pool_size` replica nodes,
/// one router node, one client node.
///
/// Node layout is fixed and public so chaos plans can target it:
/// replica `(shard, r)` lives on `NodeId(shard * replicas + r)`, the
/// router on `NodeId(pool_size)`, the client on `NodeId(pool_size + 1)`.
/// The hardware under each tier node comes from the spec's
/// [`PlatformAssignment`] — a mixed assignment changes the machines,
/// never the layout.
#[derive(Debug, Clone)]
pub struct ShardedTestbed {
    /// Tier shape, routing parameters and per-node platform assignment.
    pub spec: ShardedTierSpec,
    /// Platform of the client machine.
    pub client: PlatformSpec,
    /// Experiment seed.
    pub seed: u64,
    /// Warmup before the measurement window opens.
    pub warmup: SimDuration,
    /// Measurement window length.
    pub window: SimDuration,
    /// Open-loop target QPS per shard (total = `qps_per_shard × shards`).
    pub qps_per_shard: f64,
    /// Client connections to the router.
    pub connections: usize,
    /// Client-side request deadline: a request outstanding longer than
    /// this is recorded as a timeout. The default (1 s) effectively never
    /// fires inside a millisecond-scale window; chaos scenarios tighten
    /// it so a collapsed tier shows up as lost availability rather than
    /// as silence.
    pub client_timeout: SimDuration,
    /// Observability configuration (off by default; measured outputs are
    /// byte-identical either way).
    pub obs: ObsConfig,
    /// Cluster execution strategy. Byte-identical outputs under either;
    /// a parallel gang pays off on wide tiers (one LP per machine).
    pub executor: SimExecutor,
}

/// Deploys a tier (original or cloned) onto the prepared cluster:
/// `(cluster, spec, replica_nodes, router_node) -> tier`.
type TierDeployFn<'a> = dyn FnMut(&mut Cluster, &ShardedTierSpec, &[NodeId], NodeId) -> ShardedTier + 'a;

/// Shape of a closed-loop (controlled) run: the measurement phase is
/// split into `intervals` windows of `interval` each; at every window
/// close the harness samples the tier and, when an autoscaler is
/// configured, lets it move the active-replica count.
#[derive(Debug, Clone, Copy)]
pub struct ControlConfig {
    /// Control interval length.
    pub interval: SimDuration,
    /// Number of control intervals (total window = `intervals × interval`).
    pub intervals: u32,
    /// Autoscaler, or `None` for a fixed active-replica count.
    pub autoscaler: Option<AutoscalerConfig>,
}

impl ControlConfig {
    /// `intervals` windows of `interval`, no autoscaler.
    pub fn new(interval: SimDuration, intervals: u32) -> Self {
        ControlConfig { interval, intervals, autoscaler: None }
    }

    /// Total measured time.
    pub fn total_window(&self) -> SimDuration {
        SimDuration::from_nanos(self.interval.as_nanos() * u64::from(self.intervals))
    }
}

/// The measured outcome of one scenario run on a sharded tier: one
/// recorder window per [`LoadPlan`] phase, a bucket-exact
/// whole-scenario aggregate, and (when an autoscaler was attached) the
/// per-phase control trajectory with its scale events.
#[derive(Debug, Clone)]
pub struct ScenarioTierOutcome {
    /// Per-phase `(name, client-facing summary)` rows, in plan order.
    pub phases: Vec<(String, LoadSummary)>,
    /// Whole-scenario client-facing aggregate.
    pub overall: LoadSummary,
    /// Whole-scenario bucket-exact latency histogram.
    pub histogram: LatencyHistogram,
    /// Router placement statistics at the end of the run.
    pub router: RouterStats,
    /// Hardware metrics of the router process over the scenario.
    pub router_metrics: MetricSet,
    /// One [`ControlSample`] per phase plus any scale events (empty
    /// event list when no autoscaler was attached).
    pub trajectory: ControlTrajectory,
    /// Instructions replayed analytically by the fast path.
    pub fastforward_iterations: u64,
    /// Observability report, when [`ShardedTestbed::obs`] enabled any.
    pub obs: Option<ObsReport>,
}

/// The measured outcome of one controlled run.
#[derive(Debug, Clone)]
pub struct ControlledOutcome {
    /// Whole-run client-facing load summary (exact aggregate of the
    /// per-interval windows).
    pub e2e: LoadSummary,
    /// Whole-run bucket-exact end-to-end latency histogram.
    pub histogram: LatencyHistogram,
    /// The control trajectory: one sample per interval plus scale events.
    pub trajectory: ControlTrajectory,
    /// Router placement statistics at the end of the run.
    pub router: RouterStats,
    /// Admission-gate statistics, when the spec configured a gate.
    pub admission: Option<AdmissionStats>,
    /// Retry-budget statistics, when the spec configured a budget.
    pub budget: Option<RetryBudgetStats>,
    /// Instructions replayed analytically by the fast path.
    pub fastforward_iterations: u64,
    /// Observability report, when [`ShardedTestbed::obs`] enabled any.
    pub obs: Option<ObsReport>,
}

impl ShardedTestbed {
    /// A testbed over the spec's platform assignment (platform-A tier
    /// nodes by default), driven from a platform-C client.
    pub fn new(spec: ShardedTierSpec, seed: u64) -> Self {
        let connections = (spec.shards as usize * 4).max(8);
        ShardedTestbed {
            spec,
            client: PlatformSpec::c(),
            seed,
            warmup: SimDuration::from_millis(40),
            window: SimDuration::from_millis(200),
            qps_per_shard: 2_000.0,
            connections,
            client_timeout: SimDuration::from_millis(1_000),
            obs: ObsConfig::default(),
            executor: SimExecutor::default(),
        }
    }

    /// Aggregate open-loop target QPS.
    pub fn total_qps(&self) -> f64 {
        self.qps_per_shard * f64::from(self.spec.shards)
    }

    /// The node replica `(shard, r)` is deployed on.
    pub fn replica_node(&self, shard: u32, replica: u32) -> NodeId {
        assert!(shard < self.spec.shards && replica < self.spec.replicas);
        NodeId(shard * self.spec.replicas + replica)
    }

    /// The router's node.
    pub fn router_node(&self) -> NodeId {
        NodeId(self.spec.pool_size())
    }

    /// The client's node.
    pub fn client_node(&self) -> NodeId {
        NodeId(self.spec.pool_size() + 1)
    }

    /// Every machine of the testbed in node-layout order: the
    /// assignment's replica pools and router, then the client box.
    fn machines(&self) -> Vec<PlatformSpec> {
        let mut machines = self.spec.assignment.machines(self.spec.shards, self.spec.replicas);
        machines.push(self.client.clone());
        machines
    }

    /// Platform name under each shard's replicas, in shard order (the
    /// grouping key for per-platform roll-ups).
    fn shard_platform_names(&self) -> Vec<String> {
        (0..self.spec.shards)
            .map(|s| self.spec.assignment.replica_platform(s).name.clone())
            .collect()
    }

    /// Runs the original tier without profiling.
    pub fn run_original(&self) -> ShardedOutcome {
        self.run_tier(false, None, &mut |cluster, spec, nodes, router| {
            deploy_sharded_tier(cluster, spec, nodes, router)
        })
    }

    /// Runs the original tier with a chaos plan installed after service
    /// start-up (fault times are relative to cluster time zero).
    pub fn run_original_with_faults(&self, plan: &FaultPlan) -> ShardedOutcome {
        self.run_tier(false, Some(plan), &mut |cluster, spec, nodes, router| {
            deploy_sharded_tier(cluster, spec, nodes, router)
        })
    }

    /// Runs the original tier with profilers attached to the router and
    /// to the first replica of each distinct pool platform — one
    /// profiling target per (role, platform) pair — and returns the
    /// per-role profiles alongside the run outcome.
    pub fn profile_roles(&self) -> (ShardedOutcome, RoleProfiles) {
        let outcome = self.run_tier(true, None, &mut |cluster, spec, nodes, router| {
            deploy_sharded_tier(cluster, spec, nodes, router)
        });
        let roles = outcome.profiles.clone().expect("profiling was requested");
        (outcome, roles)
    }

    /// Runs the cloned tier re-assembled from per-role profiles.
    pub fn run_clone(&self, pipeline: &TierPipeline, roles: &RoleProfiles) -> ShardedOutcome {
        self.run_tier(false, None, &mut |cluster, spec, nodes, router| {
            deploy_cloned_tier(pipeline, roles, cluster, spec, nodes, router)
        })
    }

    /// Runs the cloned tier with a chaos plan installed.
    pub fn run_clone_with_faults(
        &self,
        pipeline: &TierPipeline,
        roles: &RoleProfiles,
        plan: &FaultPlan,
    ) -> ShardedOutcome {
        self.run_tier(false, Some(plan), &mut |cluster, spec, nodes, router| {
            deploy_cloned_tier(pipeline, roles, cluster, spec, nodes, router)
        })
    }

    /// Runs the original tier under closed-loop control (autoscaler,
    /// per-interval sampling), optionally with a chaos plan.
    pub fn run_original_controlled(
        &self,
        control: &ControlConfig,
        faults: Option<&FaultPlan>,
    ) -> ControlledOutcome {
        self.run_tier_controlled(control, faults, &mut |cluster, spec, nodes, router| {
            deploy_sharded_tier(cluster, spec, nodes, router)
        })
    }

    /// Runs the cloned tier under the same closed-loop control.
    pub fn run_clone_controlled(
        &self,
        pipeline: &TierPipeline,
        roles: &RoleProfiles,
        control: &ControlConfig,
        faults: Option<&FaultPlan>,
    ) -> ControlledOutcome {
        self.run_tier_controlled(control, faults, &mut |cluster, spec, nodes, router| {
            deploy_cloned_tier(pipeline, roles, cluster, spec, nodes, router)
        })
    }

    /// Plays a traffic scenario against the original tier: every
    /// [`LoadPlan`] source runs as a hybrid (population-multiplexed)
    /// generator against the router, each plan phase becomes its own
    /// measurement window, and — when `autoscaler` is given — the
    /// control loop makes one decision per phase boundary (the
    /// flash-crowd + autoscaler experiment of ROADMAP item 3).
    pub fn run_original_scenario(
        &self,
        plan: &LoadPlan,
        autoscaler: Option<AutoscalerConfig>,
    ) -> ScenarioTierOutcome {
        self.run_tier_scenario(plan, autoscaler, &mut |cluster, spec, nodes, router| {
            deploy_sharded_tier(cluster, spec, nodes, router)
        })
    }

    /// Plays the same scenario against the cloned tier re-assembled
    /// from per-role profiles.
    pub fn run_clone_scenario(
        &self,
        pipeline: &TierPipeline,
        roles: &RoleProfiles,
        plan: &LoadPlan,
        autoscaler: Option<AutoscalerConfig>,
    ) -> ScenarioTierOutcome {
        self.run_tier_scenario(plan, autoscaler, &mut |cluster, spec, nodes, router| {
            deploy_cloned_tier(pipeline, roles, cluster, spec, nodes, router)
        })
    }

    /// Fine-tunes the replica role *for one pool platform* on a
    /// single-tier testbed whose server is that platform, at the
    /// per-replica share of the tier load (§4.5 applied per role, per
    /// platform). Tuning against counters measured on a different box
    /// than the one the clone will run on is exactly the shortcut that
    /// breaks the band on mixed tiers.
    pub fn tune_replica_role(
        &self,
        base: &Ditto,
        roles: &RoleProfiles,
        tuner: &FineTuner,
        platform: &str,
    ) -> (Ditto, TuneResult) {
        let load = LoadKind::OpenLoop {
            qps: self.qps_per_shard / f64::from(self.spec.replicas),
            connections: 4,
        };
        let server = self
            .spec
            .assignment
            .platform_named(platform)
            .unwrap_or_else(|| panic!("platform {platform} not in the tier's assignment"))
            .clone();
        self.role_testbed(server).tune_clone(base, roles.replica_for(platform), &load, tuner)
    }

    /// Fine-tunes the router role against its profiled counters on a
    /// single-tier testbed whose server is the router's platform, at the
    /// tier's aggregate load. The router body is calibrated as a leaf
    /// service: its hardware-counter signature is body-dominated, and the
    /// knobs transfer to the re-assembled tier's router unchanged.
    pub fn tune_router_role(
        &self,
        base: &Ditto,
        roles: &RoleProfiles,
        tuner: &FineTuner,
    ) -> (Ditto, TuneResult) {
        let load = LoadKind::OpenLoop { qps: self.total_qps(), connections: self.connections };
        let server = self.spec.assignment.router_platform().clone();
        self.role_testbed(server).tune_clone(base, &roles.router, &load, tuner)
    }

    /// Fine-tunes the router plus the replica role on every profiled
    /// pool platform, and assembles the tier pipeline.
    pub fn tune_roles(&self, roles: &RoleProfiles, tuner: &FineTuner) -> TierPipeline {
        let (router, _) = self.tune_router_role(&Ditto::new(), roles, tuner);
        let replica = roles
            .replica
            .iter()
            .map(|(name, _)| {
                let (tuned, _) = self.tune_replica_role(&Ditto::new(), roles, tuner, name);
                (name.clone(), tuned)
            })
            .collect();
        TierPipeline { router, replica }
    }

    fn role_testbed(&self, server: PlatformSpec) -> Testbed {
        Testbed {
            server,
            client: self.client.clone(),
            seed: self.seed,
            warmup: self.warmup,
            window: self.window,
            obs: ObsConfig::default(),
            // Role profiling runs on a two-node bed where the gang has
            // nothing to win; keep it sequential.
            executor: SimExecutor::Sequential,
        }
    }

    fn run_tier(
        &self,
        profile_roles: bool,
        faults: Option<&FaultPlan>,
        deploy: &mut TierDeployFn<'_>,
    ) -> ShardedOutcome {
        let pool = self.spec.pool_size() as usize;
        let router_node = NodeId(pool as u32);
        let client_node = NodeId(pool as u32 + 1);
        let sink = ObsSink::new(&self.obs);
        if self.obs.self_profile {
            selfprof::set_enabled(true);
        }
        let mut cluster = Cluster::new(self.machines(), self.seed);
        cluster.set_executor(self.executor);
        cluster.set_obs(sink.clone());

        let backend_nodes: Vec<NodeId> = (0..pool as u32).map(NodeId).collect();
        let tier = deploy(&mut cluster, &self.spec, &backend_nodes, router_node);

        let recorder = TierRecorder::new(&tier.shard_names());
        tier.handler.set_observer(recorder.observer());

        cluster.run_for(SimDuration::from_millis(10));
        if let Some(plan) = faults {
            cluster.install_faults(plan);
        }

        let mut cfg = OpenLoopConfig::new(router_node, tier.router_port, self.total_qps());
        cfg.connections = self.connections;
        cfg.timeout = self.client_timeout;
        cfg.spawn(&mut cluster, client_node, recorder.tier()).expect("valid open-loop config");
        cluster.run_for(self.warmup);

        let profilers = profile_roles.then(|| {
            let router_prof = Profiler::attach(&mut cluster, router_node, tier.router_pid);
            // One replica profiler per distinct pool platform, attached
            // to the first replica of the first shard on that platform.
            let mut replica_profs = Vec::new();
            for platform in self.spec.assignment.distinct_replica_platforms(self.spec.shards) {
                let shard = (0..self.spec.shards)
                    .find(|&s| self.spec.assignment.replica_platform(s).name == platform.name)
                    .expect("distinct platform comes from some shard");
                let rep = &tier.replicas[(shard * self.spec.replicas) as usize];
                replica_profs
                    .push((platform.name.clone(), Profiler::attach(&mut cluster, rep.node, rep.pid)));
            }
            (router_prof, replica_profs)
        });
        if profilers.is_none() {
            MetricSet::begin(&mut cluster, router_node);
        }
        recorder.start_window(cluster.now());
        cluster.run_for(self.window);
        recorder.end_window(cluster.now());

        let (router_metrics, profiles) = match profilers {
            Some((router_prof, replica_profs)) => {
                let router = router_prof.finish(&mut cluster);
                let replica = replica_profs
                    .into_iter()
                    .map(|(name, prof)| (name, prof.finish(&mut cluster)))
                    .collect();
                (router.metrics, Some(RoleProfiles { router, replica }))
            }
            None => (
                MetricSet::end_for_pid(&cluster, router_node, tier.router_pid, self.window),
                None,
            ),
        };

        let obs = sink.finish().map(|mut r| {
            r.stages = selfprof::take_report();
            r
        });
        if self.obs.self_profile {
            selfprof::set_enabled(false);
        }

        ShardedOutcome {
            e2e: recorder.summary(self.window),
            histogram: recorder.tier().histogram(),
            shards: recorder.shard_summaries(self.window),
            rollup: recorder.shard_rollup(self.window).summary(),
            platforms: recorder
                .grouped_rollup(&self.shard_platform_names(), self.window)
                .into_iter()
                .map(|(name, agg)| (name, agg.summary()))
                .collect(),
            router: tier.handler.stats(),
            router_metrics,
            profiles,
            fastforward_iterations: cluster.fastforward_iterations(),
            obs,
        }
    }

    /// The closed-loop variant of [`ShardedTestbed::run_tier`]: identical
    /// deployment, warmup and load, but the measurement phase steps one
    /// control interval at a time. At each interval close the harness
    /// snapshots the windowed client summary plus the router/admission
    /// deltas into a [`ControlSample`], then (when configured) lets the
    /// [`Autoscaler`] move the active-replica count — a topology-stable
    /// scale event on [`RouterHandler::set_active_replicas`]. The control
    /// loop lives *outside* simulated time: decisions land exactly on
    /// interval boundaries, so the decision sequence depends only on the
    /// deterministic samples, never on host scheduling.
    fn run_tier_controlled(
        &self,
        control: &ControlConfig,
        faults: Option<&FaultPlan>,
        deploy: &mut TierDeployFn<'_>,
    ) -> ControlledOutcome {
        let pool = self.spec.pool_size() as usize;
        let router_node = NodeId(pool as u32);
        let client_node = NodeId(pool as u32 + 1);
        let sink = ObsSink::new(&self.obs);
        if self.obs.self_profile {
            selfprof::set_enabled(true);
        }
        let mut cluster = Cluster::new(self.machines(), self.seed);
        cluster.set_executor(self.executor);
        cluster.set_obs(sink.clone());

        let backend_nodes: Vec<NodeId> = (0..pool as u32).map(NodeId).collect();
        let tier = deploy(&mut cluster, &self.spec, &backend_nodes, router_node);

        let recorder = TierRecorder::new(&tier.shard_names());
        tier.handler.set_observer(recorder.observer());

        cluster.run_for(SimDuration::from_millis(10));
        if let Some(plan) = faults {
            cluster.install_faults(plan);
        }

        let mut cfg = OpenLoopConfig::new(router_node, tier.router_port, self.total_qps());
        cfg.connections = self.connections;
        cfg.timeout = self.client_timeout;
        cfg.spawn(&mut cluster, client_node, recorder.tier()).expect("valid open-loop config");
        cluster.run_for(self.warmup);

        let mut scaler = control.autoscaler.map(Autoscaler::new);
        let mut trajectory = ControlTrajectory::new(control.interval);
        let mut agg = LoadAggregate::new();
        let mut active = tier.handler.active_replicas();
        let (mut prev_routed, mut prev_retries) = {
            let rs = tier.handler.stats();
            (rs.total_routed(), rs.retries)
        };
        for i in 0..control.intervals {
            recorder.start_window(cluster.now());
            cluster.run_for(control.interval);
            recorder.end_window(cluster.now());
            let s = recorder.summary(control.interval);
            agg.add(&s, &recorder.tier().histogram(), control.interval);

            let rs = tier.handler.stats();
            let adm = tier.admission.as_ref().map(|a| a.stats());
            let sample = ControlSample {
                interval: i,
                end_ns: cluster.now().as_nanos(),
                sent: s.sent,
                received: s.received,
                degraded: s.degraded,
                rejected: s.rejected,
                timeouts: s.timeouts,
                errors: s.errors,
                p99_ns: s.latency.p99.as_nanos(),
                queue_depth: adm.map(|a| a.depth).unwrap_or(0),
                depth_peak: adm.map(|a| a.depth_peak).unwrap_or(0),
                retries: rs.retries - prev_retries,
                routed: rs.total_routed() - prev_routed,
                active_replicas: active,
            };
            prev_retries = rs.retries;
            prev_routed = rs.total_routed();
            trajectory.push(sample);

            if let Some(scaler) = &mut scaler {
                let next = scaler.decide(active, &sample);
                if next != active {
                    tier.handler.set_active_replicas(next);
                    trajectory.note_scale(i, cluster.now(), active, next);
                    active = next;
                }
            }
        }

        let obs = sink.finish().map(|mut r| {
            r.stages = selfprof::take_report();
            r
        });
        if self.obs.self_profile {
            selfprof::set_enabled(false);
        }

        ControlledOutcome {
            e2e: agg.summary(),
            histogram: agg.histogram().clone(),
            trajectory,
            router: tier.handler.stats(),
            admission: tier.admission.as_ref().map(|a| a.stats()),
            budget: tier.retry_budget.as_ref().map(|b| b.stats()),
            fastforward_iterations: cluster.fastforward_iterations(),
            obs,
        }
    }

    /// The scenario variant of [`ShardedTestbed::run_tier`]: hybrid
    /// sources instead of the per-connection generator, one window per
    /// plan phase, and an optional per-phase autoscaler. The testbed's
    /// `connections` budget is split across the plan's sources as their
    /// multiplexed pool sizes, so a million-user plan still dials only a
    /// handful of router connections.
    fn run_tier_scenario(
        &self,
        plan: &LoadPlan,
        autoscaler: Option<AutoscalerConfig>,
        deploy: &mut TierDeployFn<'_>,
    ) -> ScenarioTierOutcome {
        assert!(!plan.phases.is_empty(), "scenario needs at least one phase");
        let pool = self.spec.pool_size() as usize;
        let router_node = NodeId(pool as u32);
        let client_node = NodeId(pool as u32 + 1);
        let sink = ObsSink::new(&self.obs);
        if self.obs.self_profile {
            selfprof::set_enabled(true);
        }
        let mut cluster = Cluster::new(self.machines(), self.seed);
        cluster.set_executor(self.executor);
        cluster.set_obs(sink.clone());

        let backend_nodes: Vec<NodeId> = (0..pool as u32).map(NodeId).collect();
        let tier = deploy(&mut cluster, &self.spec, &backend_nodes, router_node);

        let recorder = TierRecorder::new(&tier.shard_names());
        tier.handler.set_observer(recorder.observer());

        cluster.run_for(SimDuration::from_millis(10));

        let pool_per_source = (self.connections / plan.sources.len().max(1)).max(2);
        for source in &plan.sources {
            let mut cfg = source.to_config(router_node, tier.router_port, self.warmup);
            cfg.pool = pool_per_source;
            cfg.timeout = self.client_timeout;
            cfg.spawn(&mut cluster, client_node, recorder.tier())
                .expect("valid scenario source");
        }
        cluster.run_for(self.warmup);

        MetricSet::begin(&mut cluster, router_node);
        let mut scaler = autoscaler.map(Autoscaler::new);
        let mut trajectory = ControlTrajectory::new(plan.phases[0].duration);
        let mut agg = LoadAggregate::new();
        let mut phases = Vec::with_capacity(plan.phases.len());
        let mut active = tier.handler.active_replicas();
        let (mut prev_routed, mut prev_retries) = {
            let rs = tier.handler.stats();
            (rs.total_routed(), rs.retries)
        };
        for (i, phase) in plan.phases.iter().enumerate() {
            recorder.start_window(cluster.now());
            cluster.run_for(phase.duration);
            recorder.end_window(cluster.now());
            let s = recorder.summary(phase.duration);
            agg.add(&s, &recorder.tier().histogram(), phase.duration);
            phases.push((phase.name.clone(), s));

            let rs = tier.handler.stats();
            let adm = tier.admission.as_ref().map(|a| a.stats());
            let sample = ControlSample {
                interval: i as u32,
                end_ns: cluster.now().as_nanos(),
                sent: s.sent,
                received: s.received,
                degraded: s.degraded,
                rejected: s.rejected,
                timeouts: s.timeouts,
                errors: s.errors,
                p99_ns: s.latency.p99.as_nanos(),
                queue_depth: adm.map(|a| a.depth).unwrap_or(0),
                depth_peak: adm.map(|a| a.depth_peak).unwrap_or(0),
                retries: rs.retries - prev_retries,
                routed: rs.total_routed() - prev_routed,
                active_replicas: active,
            };
            prev_retries = rs.retries;
            prev_routed = rs.total_routed();
            trajectory.push(sample);

            if let Some(scaler) = &mut scaler {
                let next = scaler.decide(active, &sample);
                if next != active {
                    tier.handler.set_active_replicas(next);
                    trajectory.note_scale(i as u32, cluster.now(), active, next);
                    active = next;
                }
            }
        }
        let router_metrics =
            MetricSet::end_for_pid(&cluster, router_node, tier.router_pid, plan.total_duration());

        let obs = sink.finish().map(|mut r| {
            r.stages = selfprof::take_report();
            r
        });
        if self.obs.self_profile {
            selfprof::set_enabled(false);
        }

        ScenarioTierOutcome {
            phases,
            overall: agg.summary(),
            histogram: agg.histogram().clone(),
            router: tier.handler.stats(),
            router_metrics,
            trajectory,
            fastforward_iterations: cluster.fastforward_iterations(),
            obs,
        }
    }
}

/// Response size of the cloned router, deconvolved from the profiled
/// send-size mean: per request the router emits exactly one
/// [`ROUTER_RPC_BYTES`]-byte downstream RPC and one response, so
/// `response = 2 × mean − rpc` (clamped to a sane floor).
pub fn clone_router_response_bytes(router: &AppProfile) -> u64 {
    let mean = router.syscalls.get("sendmsg").mean_bytes();
    (2 * mean).saturating_sub(ROUTER_RPC_BYTES).max(64)
}

/// Re-assembles the cloned tier on `cluster`: synthetic replicas stamped
/// from the replica-role profile *of each shard's platform* (one
/// [`Ditto::clone_service`] spec per pool slot, renamed), fronted by a
/// synthetic router whose compute body comes from the router-role
/// profile and whose ring/policy topology is copied from the spec. On a
/// mixed tier the per-shard platform lookup routes every pool slot to
/// the profile and tuned pipeline measured on its own hardware.
pub fn deploy_cloned_tier(
    pipeline: &TierPipeline,
    roles: &RoleProfiles,
    cluster: &mut Cluster,
    spec: &ShardedTierSpec,
    nodes: &[NodeId],
    router_node: NodeId,
) -> ShardedTier {
    let router = &pipeline.router;
    let params = generate_body_params(&roles.router, router.stages, &router.config, &router.knobs);
    let data_bytes = params
        .data_working_sets
        .iter()
        .map(|&(s, _)| s)
        .max()
        .unwrap_or(4096)
        .saturating_mul(2);
    let handler =
        Arc::new(RouterHandler::new(spec, &params, clone_router_response_bytes(&roles.router)));
    let parts = ServiceSpecParts {
        name: "synthetic-router".into(),
        network: generate_network_model(&roles.router),
        data_bytes,
        shared_bytes: data_bytes,
    };
    deploy_sharded_tier_with(
        cluster,
        spec,
        handler,
        parts,
        &mut |cluster, node, shard, r| {
            let platform = &spec.assignment.replica_platform(shard).name;
            let ditto = pipeline.replica_for(platform);
            let mut s =
                ditto.clone_service(cluster, node, spec.backend_port, roles.replica_for(platform));
            s.name = format!("synthetic-s{shard}-r{r}");
            s
        },
        nodes,
        router_node,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bed(shards: u32, replicas: u32, seed: u64) -> ShardedTestbed {
        let spec = ShardedTierSpec { shards, replicas, ..ShardedTierSpec::default() };
        let mut bed = ShardedTestbed::new(spec, seed);
        bed.warmup = SimDuration::from_millis(20);
        bed.window = SimDuration::from_millis(60);
        bed.qps_per_shard = 1_500.0;
        bed
    }

    #[test]
    fn original_tier_serves_and_attributes_per_shard() {
        let bed = quick_bed(2, 2, 41);
        let out = bed.run_original();
        assert!(out.e2e.received > 50, "tier served {} requests", out.e2e.received);
        assert_eq!(out.e2e.degraded, 0, "healthy tier must not degrade");
        let routed = out.router.total_routed();
        assert!(routed > 0);
        let shard_received: u64 = out.shards.iter().map(|(_, s)| s.received).sum();
        assert!(
            shard_received > 0 && shard_received <= routed,
            "windowed shard completions {shard_received} vs routed {routed}"
        );
        assert_eq!(out.rollup.received, shard_received, "roll-up is exact");
        assert!(out.router_metrics.counters.instructions > 0);
    }

    #[test]
    fn per_role_profiles_capture_both_binaries() {
        let bed = quick_bed(2, 2, 42);
        let (out, roles) = bed.profile_roles();
        assert!(out.e2e.received > 0);
        assert!(roles.router.requests > 0, "router profile saw requests");
        let replica = roles.sole_replica();
        assert_eq!(roles.replica[0].0, "A", "homogeneous tier profiles one platform");
        assert!(replica.requests > 0, "replica profile saw requests");
        // The router body (~2.8k instr) is much lighter than redis (~14k).
        assert!(
            roles.router.instructions_per_request() < replica.instructions_per_request(),
            "router {} vs replica {}",
            roles.router.instructions_per_request(),
            replica.instructions_per_request()
        );
    }

    #[test]
    fn mixed_tier_profiles_every_pool_platform_and_clone_serves() {
        let spec = ShardedTierSpec {
            shards: 2,
            replicas: 2,
            assignment: PlatformAssignment::split(
                PlatformSpec::b(),
                1,
                PlatformSpec::a(),
            )
            .with_router(PlatformSpec::c()),
            ..ShardedTierSpec::default()
        };
        let mut bed = ShardedTestbed::new(spec, 46);
        bed.warmup = SimDuration::from_millis(20);
        bed.window = SimDuration::from_millis(60);
        bed.qps_per_shard = 1_500.0;

        let (out, roles) = bed.profile_roles();
        assert!(out.e2e.received > 50, "mixed tier served {}", out.e2e.received);
        let names: Vec<&str> = roles.replica.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["B", "A"], "one replica profile per pool, first-shard order");
        assert!(roles.replica_for("A").requests > 0 && roles.replica_for("B").requests > 0);

        let rows: Vec<&str> = out.platforms.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(rows, ["B", "A"], "per-platform roll-up rows");
        let served: u64 = out.platforms.iter().map(|(_, s)| s.received).sum();
        assert_eq!(served, out.rollup.received, "platform rows partition the roll-up");
        assert!(
            out.platforms.iter().all(|(_, s)| s.received > 0),
            "both hardware pools carried traffic: {:?}",
            out.platforms.iter().map(|(n, s)| (n.clone(), s.received)).collect::<Vec<_>>()
        );

        let clone = bed.run_clone(&TierPipeline::new(), &roles);
        assert!(clone.e2e.received > 50, "mixed clone served {}", clone.e2e.received);
        assert!(clone.platforms.iter().all(|(_, s)| s.received > 0));
    }

    #[test]
    fn cloned_tier_reassembles_and_serves() {
        let bed = quick_bed(2, 2, 43);
        let (_, roles) = bed.profile_roles();
        let out = bed.run_clone(&TierPipeline::new(), &roles);
        assert!(out.e2e.received > 50, "clone served {} requests", out.e2e.received);
        assert_eq!(out.e2e.degraded, 0);
        assert!(out.router.total_routed() > 0);
    }

    #[test]
    fn controlled_run_samples_intervals_and_replays_bit_identically() {
        use ditto_app::admission::AdmissionConfig;
        use ditto_app::resilience::RetryBudgetConfig;
        let run = || {
            let spec = ShardedTierSpec {
                shards: 2,
                replicas: 2,
                initial_active: Some(1),
                admission: Some(AdmissionConfig::drop_tail(256)),
                retry_budget: Some(RetryBudgetConfig::new(2_000, 100)),
                ..ShardedTierSpec::default()
            };
            let mut bed = ShardedTestbed::new(spec, 45);
            bed.warmup = SimDuration::from_millis(20);
            bed.qps_per_shard = 1_500.0;
            let control = ControlConfig {
                interval: SimDuration::from_millis(20),
                intervals: 4,
                // p99_high at one nanosecond: every interval reads as
                // overloaded, so the scale-out schedule is known exactly
                // (out at interval 0, cooldown at 1, capped after).
                autoscaler: Some(AutoscalerConfig {
                    min_active: 1,
                    max_active: 2,
                    p99_high: SimDuration::from_nanos(1),
                    p99_low: SimDuration::ZERO,
                    shed_high_permille: 1_000,
                    cooldown_intervals: 1,
                }),
            };
            bed.run_original_controlled(&control, None)
        };
        let out = run();
        assert_eq!(out.trajectory.samples.len(), 4, "one sample per interval");
        assert!(out.e2e.received > 50, "tier served {}", out.e2e.received);
        assert_eq!(
            out.trajectory.events.len(),
            1,
            "single scale-out 1→2: {:?}",
            out.trajectory.events
        );
        let ev = out.trajectory.events[0];
        assert_eq!((ev.interval, ev.from, ev.to), (0, 1, 2));
        assert_eq!(out.trajectory.samples[0].active_replicas, 1);
        assert_eq!(out.trajectory.samples[1].active_replicas, 2);
        assert_eq!(out.router.active_replicas, 2);
        assert!(out.admission.is_some() && out.budget.is_some());
        // The trajectory is raw counts: a replay must be bit-identical.
        let again = run();
        assert_eq!(out.trajectory, again.trajectory);
        assert_eq!(out.histogram, again.histogram);
    }

    #[test]
    fn clone_response_bytes_deconvolution_recovers_redis_payload() {
        let bed = quick_bed(2, 1, 44);
        let (_, roles) = bed.profile_roles();
        let resp = clone_router_response_bytes(&roles.router);
        // Original redis-backed router answers with 1 KB values.
        assert!(
            (768..=1280).contains(&resp),
            "deconvolved response bytes {resp} far from 1024"
        );
    }
}
