//! The `Ditto` facade: profile in, deployable synthetic service out.
//!
//! Single-tier cloning combines the skeleton generator, the body
//! generator and syscall synthesis into a [`ServiceSpec`] in the same
//! representation original applications use — so the clone runs on the
//! identical substrate and is compared by the same counters. Multi-tier
//! cloning walks the traced RPC dependency DAG (§4.2) and emits one clone
//! per tier with the traced per-edge call ratios.

use std::collections::HashMap;
use std::sync::Arc;

use ditto_app::handlers::{BehaviorHandler, FileReadSpec, RpcEdge};
use ditto_app::resilience::RpcPolicy;
use ditto_app::service::ServiceSpec;
use ditto_kernel::{Cluster, NodeId};
use ditto_profile::AppProfile;
use ditto_trace::{ServiceGraph, TraceCollector};

use crate::body_gen::{generate_body_params, GeneratorConfig, TuneKnobs};
use crate::skeleton::generate_network_model;
use crate::stages::GeneratorStages;

/// The cloning pipeline.
#[derive(Debug, Clone, Default)]
pub struct Ditto {
    /// Enabled generator mechanisms (all, unless running Figure 9).
    pub stages: GeneratorStages,
    /// Generation limits and seeds.
    pub config: GeneratorConfig,
    /// Fine-tuner knob state (identity unless tuned).
    pub knobs: TuneKnobs,
}

impl Ditto {
    /// A fully-enabled pipeline.
    pub fn new() -> Self {
        Ditto::default()
    }

    /// A pipeline restricted to the given stages (Figure 9's ladder).
    pub fn with_stages(stages: GeneratorStages) -> Self {
        Ditto { stages, ..Ditto::default() }
    }

    /// Builds the synthetic handler (body + syscall synthesis) and the
    /// data-region sizing for one profiled service. `seed_mix` perturbs
    /// the materialization seed (distinct tiers must not share code).
    fn build_handler(
        &self,
        cluster: &mut Cluster,
        node: NodeId,
        profile: &AppProfile,
        seed_mix: u64,
    ) -> (BehaviorHandler, u64) {
        let _span = ditto_obs::selfprof::span("codegen");
        let mut params = generate_body_params(profile, self.stages, &self.config, &self.knobs);
        params.seed ^= seed_mix;
        let mut handler = BehaviorHandler::new(&params);

        // Response size: observed bytes per send.
        let sends = profile.syscalls.get("sendmsg");
        let response_bytes = if sends.count > 0 { sends.mean_bytes().max(1) } else { 64 };
        handler = handler.with_response_bytes(response_bytes);

        // Syscall synthesis (stage B): file reads with the observed
        // frequency, size and offset span, against a synthetic dataset.
        if self.stages.syscalls {
            let p = profile.syscalls.get("pread");
            let r = profile.syscalls.get("read");
            let reads = p.count + r.count;
            if reads > 0 {
                let per_request = reads as f64 / profile.requests.max(1) as f64;
                let mean_bytes = (p.total_bytes + r.total_bytes) / reads;
                let span = profile.syscalls.file_span().max(mean_bytes.max(4096));
                let file = cluster.machine_mut(node).fs.create(span);
                // Reproduce the observed page-cache behaviour: the blocked
                // fraction of reads is the disk-bound fraction; warm the
                // synthetic dataset to match (NGINX's content is fully
                // cache-resident, MongoDB's 40 GB mostly is not).
                let warm = (span as f64 * (1.0 - profile.syscalls.read_block_rate())) as u64;
                cluster.machine_mut(node).fs.warm(file, warm);
                handler = handler.with_file_read(FileReadSpec {
                    file,
                    span,
                    bytes: mean_bytes.max(1),
                    probability: per_request.min(1.0),
                });
            }
        }

        let data_bytes = params
            .data_working_sets
            .iter()
            .map(|&(s, _)| s)
            .max()
            .unwrap_or(4096)
            .saturating_mul(2);
        ditto_obs::selfprof::note_alloc(data_bytes);
        (handler, data_bytes)
    }

    /// Clones a single-tier service from its profile. The synthetic
    /// service listens on `port` on `node`.
    pub fn clone_service(
        &self,
        cluster: &mut Cluster,
        node: NodeId,
        port: u16,
        profile: &AppProfile,
    ) -> ServiceSpec {
        let (handler, data_bytes) = self.build_handler(cluster, node, profile, 0);
        ServiceSpec {
            name: "synthetic".into(),
            port,
            network: generate_network_model(profile),
            handler: Arc::new(handler),
            downstreams: Vec::new(),
            collector: None,
            rpc: RpcPolicy::default(),
            admission: None,
            retry_budget: None,
            data_bytes,
            shared_bytes: data_bytes,
        }
    }

    /// Clones a whole microservice topology: one synthetic tier per traced
    /// service, connected per the dependency DAG's call ratios, deployed
    /// leaves-first across `nodes` (round-robin). Returns
    /// `(name, node, port)` per tier with an entry (root) tier first.
    ///
    /// # Panics
    ///
    /// Panics if a traced service has no profile in `profiles`.
    pub fn clone_graph(
        &self,
        cluster: &mut Cluster,
        nodes: &[NodeId],
        base_port: u16,
        graph: &ServiceGraph,
        profiles: &HashMap<String, AppProfile>,
        collector: Option<TraceCollector>,
    ) -> Vec<(String, NodeId, u16)> {
        assert!(!nodes.is_empty(), "need at least one node");
        let by_index: HashMap<&str, NodeId> = graph
            .services
            .iter()
            .enumerate()
            .map(|(ix, name)| (name.as_str(), nodes[ix % nodes.len()]))
            .collect();
        self.clone_graph_placed(cluster, &|name| by_index[name], base_port, graph, profiles, collector)
    }

    /// Like [`Ditto::clone_graph`], but with explicit per-tier placement —
    /// used when specific synthetic tiers must land on dedicated machines
    /// for per-tier counter measurement (Figures 5, 7 and 8 plot
    /// TextService and SocialGraphService in isolation).
    pub fn clone_graph_placed(
        &self,
        cluster: &mut Cluster,
        place: &dyn Fn(&str) -> NodeId,
        base_port: u16,
        graph: &ServiceGraph,
        profiles: &HashMap<String, AppProfile>,
        collector: Option<TraceCollector>,
    ) -> Vec<(String, NodeId, u16)> {
        let order = graph.topo_order();
        let addr: HashMap<usize, (NodeId, u16)> = order
            .iter()
            .map(|&ix| (ix, (place(&graph.services[ix]), base_port + ix as u16)))
            .collect();

        // Deploy leaves first so upstream connects succeed.
        for &ix in order.iter().rev() {
            let name = &graph.services[ix];
            let (node, port) = addr[&ix];
            let profile = profiles
                .get(name)
                .unwrap_or_else(|| panic!("missing profile for tier {name}"));
            let (mut handler, data_bytes) =
                self.build_handler(cluster, node, profile, 0x9e37 ^ ix as u64);

            // Wire downstream edges with traced call ratios; RPC payload
            // sizes approximated by the tier's mean send size.
            let rpc_bytes = {
                let s = profile.syscalls.get("sendmsg");
                if s.count > 0 {
                    s.mean_bytes().max(1)
                } else {
                    256
                }
            };
            let mut downstreams = Vec::new();
            for (slot, edge) in graph.children_of(ix).into_iter().enumerate() {
                downstreams.push(addr[&edge.to]);
                handler = handler.with_rpc(RpcEdge {
                    downstream: slot,
                    calls_per_request: edge.calls_per_request,
                    bytes: rpc_bytes,
                });
            }

            let spec = ServiceSpec {
                name: format!("synthetic-{name}"),
                port,
                network: generate_network_model(profile),
                handler: Arc::new(handler),
                downstreams,
                collector: collector.clone(),
                rpc: RpcPolicy::default(),
                admission: None,
                retry_budget: None,
                data_bytes,
                shared_bytes: data_bytes,
            };
            spec.deploy(cluster, node);
        }

        // Entry tiers (roots) first in the returned listing.
        let roots = graph.roots();
        let mut out: Vec<(String, NodeId, u16)> = Vec::new();
        for &ix in &order {
            let entry = (graph.services[ix].clone(), addr[&ix].0, addr[&ix].1);
            if roots.contains(&ix) {
                out.insert(0, entry);
            } else {
                out.push(entry);
            }
        }
        out
    }
}
