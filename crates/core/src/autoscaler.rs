//! The closed-loop autoscaler.
//!
//! A deliberately small, deterministic controller in the style of a
//! production horizontal autoscaler: at every control-interval close it
//! reads the interval's windowed client-side observations (p99, shed and
//! timeout counts) and moves the sharded tier's per-shard active-replica
//! count one step at a time within `[min_active, max_active]`. Scaling
//! reuses [`ditto_app::RouterHandler::set_active_replicas`]'s
//! topology-stable contract — the extra replicas are deployed and idle
//! from time zero — so a scale event changes routing, never node layout,
//! and the clone can reproduce the decision sequence exactly.
//!
//! Determinism contract: decisions are pure integer comparisons on raw
//! interval counters plus the controller's own cooldown state. No
//! floats, no RNG, no wall clock — two runs that observe identical
//! samples make identical decisions.

use ditto_sim::time::SimDuration;
use ditto_workload::ControlSample;

/// Autoscaler thresholds and bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AutoscalerConfig {
    /// Lower bound on active replicas per shard.
    pub min_active: u32,
    /// Upper bound on active replicas per shard (≤ provisioned pool).
    pub max_active: u32,
    /// Scale out when the interval's p99 exceeds this.
    pub p99_high: SimDuration,
    /// Scale in only when the interval's p99 is below this.
    pub p99_low: SimDuration,
    /// Scale out when shed requests exceed this many per mille of
    /// completed attempts.
    pub shed_high_permille: u64,
    /// Intervals to hold still after any scale decision.
    pub cooldown_intervals: u32,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            min_active: 1,
            max_active: u32::MAX,
            p99_high: SimDuration::from_millis(2),
            p99_low: SimDuration::from_micros(500),
            shed_high_permille: 50,
            cooldown_intervals: 1,
        }
    }
}

/// The controller: config plus cooldown state.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    cooldown: u32,
}

impl Autoscaler {
    /// A controller with no cooldown pending.
    pub fn new(cfg: AutoscalerConfig) -> Self {
        Autoscaler { cfg, cooldown: 0 }
    }

    /// The configuration the controller runs under.
    pub fn config(&self) -> AutoscalerConfig {
        self.cfg
    }

    /// Whether the interval shows overload: tail latency through the
    /// ceiling, or a meaningful fraction of load shed *or* degraded.
    /// Degraded responses count because a tier that has burned its
    /// retry budget fails fast and cheap — latency and queue depth look
    /// healthy while goodput is gone, and capacity is the only cure.
    fn overloaded(&self, s: &ControlSample) -> bool {
        s.p99_ns > self.cfg.p99_high.as_nanos()
            || (s.rejected + s.degraded) * 1_000 > self.cfg.shed_high_permille * s.attempts()
    }

    /// Whether the interval is comfortably idle: low tail, nothing
    /// shed, degraded, or timing out.
    fn idle(&self, s: &ControlSample) -> bool {
        s.p99_ns > 0
            && s.p99_ns < self.cfg.p99_low.as_nanos()
            && s.rejected == 0
            && s.degraded == 0
            && s.timeouts == 0
    }

    /// One control decision: given the active count the interval ran at
    /// and its sample, returns the count for the next interval. Moves at
    /// most one step; holds during cooldown.
    pub fn decide(&mut self, current: u32, sample: &ControlSample) -> u32 {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return current;
        }
        if self.overloaded(sample) && current < self.cfg.max_active {
            self.cooldown = self.cfg.cooldown_intervals;
            return current + 1;
        }
        if self.idle(sample) && current > self.cfg.min_active {
            self.cooldown = self.cfg.cooldown_intervals;
            return current - 1;
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscalerConfig {
        AutoscalerConfig {
            min_active: 1,
            max_active: 3,
            p99_high: SimDuration::from_nanos(10_000),
            p99_low: SimDuration::from_nanos(2_000),
            shed_high_permille: 50,
            cooldown_intervals: 1,
        }
    }

    fn sample(p99_ns: u64, received: u64, rejected: u64) -> ControlSample {
        ControlSample { p99_ns, received, rejected, ..Default::default() }
    }

    #[test]
    fn scales_out_on_high_p99_and_respects_cooldown_and_max() {
        let mut a = Autoscaler::new(cfg());
        let hot = sample(50_000, 100, 0);
        assert_eq!(a.decide(1, &hot), 2, "tail over ceiling: scale out");
        assert_eq!(a.decide(2, &hot), 2, "cooldown holds");
        assert_eq!(a.decide(2, &hot), 3);
        assert_eq!(a.decide(3, &hot), 3, "cooldown again");
        assert_eq!(a.decide(3, &hot), 3, "capped at max_active");
    }

    #[test]
    fn scales_out_on_shed_fraction() {
        let mut a = Autoscaler::new(cfg());
        // 6% shed > 5% threshold, even with a healthy p99.
        assert_eq!(a.decide(1, &sample(1_000, 94, 6)), 2);
        // 4% shed with low p99 is not overload — but shedding at all
        // blocks scale-in, so the controller holds.
        let mut b = Autoscaler::new(cfg());
        assert_eq!(b.decide(2, &sample(1_000, 96, 4)), 2);
    }

    #[test]
    fn scales_in_only_when_fully_idle_and_respects_min() {
        let mut a = Autoscaler::new(cfg());
        assert_eq!(a.decide(2, &sample(1_000, 100, 0)), 1, "idle: scale in");
        assert_eq!(a.decide(1, &sample(1_000, 100, 0)), 1, "cooldown");
        assert_eq!(a.decide(1, &sample(1_000, 100, 0)), 1, "floor at min_active");
        // A single timeout blocks scale-in.
        let mut b = Autoscaler::new(cfg());
        let mut s = sample(1_000, 100, 0);
        s.timeouts = 1;
        assert_eq!(b.decide(2, &s), 2);
        // An empty interval (p99 == 0: no samples) holds rather than
        // scaling in blind.
        let mut c = Autoscaler::new(cfg());
        assert_eq!(c.decide(2, &sample(0, 0, 0)), 2);
    }

    #[test]
    fn identical_sample_streams_make_identical_decisions() {
        let stream: Vec<ControlSample> = (0..20)
            .map(|i| sample(if i % 3 == 0 { 50_000 } else { 1_000 }, 100, u64::from(i % 4 == 1)))
            .collect();
        let run = || {
            let mut a = Autoscaler::new(cfg());
            let mut active = 1;
            stream
                .iter()
                .map(|s| {
                    active = a.decide(active, s);
                    active
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
