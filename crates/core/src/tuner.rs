//! The feedback fine-tuner (§4.5).
//!
//! Profiling tools see the application body in isolation; the interaction
//! between skeleton, kernel and body (and between the clone's own knobs)
//! leaves residual error. The paper groups correlated knobs — branch
//! rates and the i-memory pattern jointly drive branch prediction and
//! frontend stalls; the d-memory pattern drives the backend — and applies
//! a linear feedback heuristic per group, converging "within ten
//! iterations to over 95% accuracy". The tuner is generic over an `eval`
//! closure that deploys the candidate clone and measures it, so the same
//! logic serves tests, benches and the Figure 9 harness.

use ditto_profile::MetricSet;
use ditto_sim::stats::relative_error_pct;

use crate::body_gen::TuneKnobs;

/// Fine-tuning configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FineTuner {
    /// Maximum feedback iterations (the paper needs ≤ 10).
    pub max_iterations: usize,
    /// Stop when every tracked metric is within this relative error (%).
    pub tolerance_pct: f64,
    /// Feedback exponent (damping); 1.0 is pure proportional control.
    pub gain: f64,
}

impl Default for FineTuner {
    fn default() -> Self {
        FineTuner { max_iterations: 10, tolerance_pct: 5.0, gain: 0.6 }
    }
}

/// One tuning iteration's record.
#[derive(Debug, Clone)]
pub struct TuneStep {
    /// Knobs evaluated.
    pub knobs: TuneKnobs,
    /// Worst tracked relative error (%).
    pub worst_error_pct: f64,
    /// Per-metric errors `(name, %)`.
    pub errors: Vec<(&'static str, f64)>,
}

/// The tuning outcome.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// Best knobs found.
    pub knobs: TuneKnobs,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was met.
    pub converged: bool,
    /// Per-iteration history.
    pub history: Vec<TuneStep>,
}

fn tracked_errors(target: &MetricSet, measured: &MetricSet) -> Vec<(&'static str, f64)> {
    vec![
        ("IPC", relative_error_pct(target.ipc, measured.ipc)),
        ("Branch", relative_error_pct(target.branch_miss_rate, measured.branch_miss_rate)),
        ("L1i", relative_error_pct(target.l1i_miss_rate, measured.l1i_miss_rate)),
        ("L1d", relative_error_pct(target.l1d_miss_rate, measured.l1d_miss_rate)),
        ("LLC", relative_error_pct(target.llc_miss_rate, measured.llc_miss_rate)),
    ]
}

fn ratio(target: f64, measured: f64) -> f64 {
    let eps = 1e-6;
    ((target + eps) / (measured + eps)).clamp(0.25, 4.0)
}

impl FineTuner {
    /// Runs the feedback loop: `eval` deploys a clone built with the given
    /// knobs and returns its measured metrics against `target`.
    pub fn tune(
        &self,
        target: &MetricSet,
        mut eval: impl FnMut(&TuneKnobs) -> MetricSet,
    ) -> TuneResult {
        let mut knobs = TuneKnobs::default();
        let mut history = Vec::new();
        let mut best = (f64::INFINITY, knobs, MetricSet::zero());
        let mut gain = self.gain;

        for iter in 0..self.max_iterations {
            let measured = eval(&knobs);
            let errors = tracked_errors(target, &measured);
            let worst = errors.iter().map(|&(_, e)| e).fold(0.0f64, f64::max);
            history.push(TuneStep { knobs, worst_error_pct: worst, errors });
            if worst < best.0 {
                best = (worst, knobs, measured);
            } else {
                // Overshot: the last step made things worse. Halve the
                // feedback gain and re-step from the best point seen so
                // far instead of compounding the oscillation.
                gain *= 0.5;
            }
            if worst <= self.tolerance_pct {
                return TuneResult { knobs, iterations: iter + 1, converged: true, history };
            }

            knobs = best.1;
            let measured = &best.2;

            // Group 1 (frontend): the L1i miss rate is steered by the
            // instruction-locality shift; branch rates by their own scale.
            // They are grouped because both feed branch prediction and
            // fetch stalls (§4.5's example of jointly-tuned knobs).
            let l1i_err = measured.l1i_miss_rate - target.l1i_miss_rate;
            knobs.imem_locality = (knobs.imem_locality + gain * l1i_err).clamp(-0.9, 0.95);
            let br_r = ratio(target.branch_miss_rate, measured.branch_miss_rate);
            knobs.branch_scale = (knobs.branch_scale * br_r.powf(gain)).clamp(0.125, 8.0);

            // Group 2 (backend): the L1d miss rate is steered by the
            // data-locality shift; deeper levels by the working-set scale.
            let l1d_err = measured.l1d_miss_rate - target.l1d_miss_rate;
            knobs.dmem_locality = (knobs.dmem_locality + gain * l1d_err).clamp(-0.9, 0.95);
            let llc_r = ratio(target.llc_miss_rate, measured.llc_miss_rate);
            knobs.dmem_scale = (knobs.dmem_scale * llc_r.powf(gain)).clamp(0.125, 16.0);

            // Group 3 (ILP/MLP): residual IPC error, after the memory
            // groups, is corrected through dependency distances and
            // pointer chasing (§4.4.6).
            let ipc_r = ratio(target.ipc, measured.ipc);
            knobs.ilp_scale = (knobs.ilp_scale * ipc_r.powf(gain)).clamp(0.25, 8.0);
        }

        TuneResult {
            knobs: best.1,
            iterations: self.max_iterations,
            converged: best.0 <= self.tolerance_pct,
            history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_hw::counters::PerfCounters;

    fn metrics(branch: f64, l1i: f64, l1d: f64, llc: f64) -> MetricSet {
        MetricSet {
            ipc: 1.0,
            branch_miss_rate: branch,
            l1i_miss_rate: l1i,
            l1d_miss_rate: l1d,
            l2_miss_rate: 0.2,
            llc_miss_rate: llc,
            net_bandwidth: 0.0,
            disk_bandwidth: 0.0,
            topdown: Default::default(),
            counters: PerfCounters::new(),
        }
    }

    /// A toy "system" where miss rates respond monotonically to the knobs,
    /// with cross-coupling — the tuner must still converge.
    fn toy_eval(target: &MetricSet) -> impl FnMut(&TuneKnobs) -> MetricSet + '_ {
        move |k: &TuneKnobs| {
            metrics(
                target.branch_miss_rate * 0.6 * k.branch_scale,
                (target.l1i_miss_rate * 0.5 - 0.4 * k.imem_locality).max(0.0),
                (target.l1d_miss_rate * 1.8 - 0.6 * k.dmem_locality).max(0.0),
                target.llc_miss_rate * 1.5 * k.dmem_scale.powf(0.7),
            )
        }
    }

    #[test]
    fn converges_within_ten_iterations() {
        let target = metrics(0.04, 0.05, 0.10, 0.30);
        let tuner = FineTuner::default();
        let result = tuner.tune(&target, toy_eval(&target));
        assert!(result.converged, "history: {:?}", result.history.last());
        assert!(result.iterations <= 10);
        // Errors must shrink from first to last iteration.
        let first = result.history.first().unwrap().worst_error_pct;
        let last = result.history.last().unwrap().worst_error_pct;
        assert!(last < first, "first {first} last {last}");
    }

    #[test]
    fn perfect_start_stops_immediately() {
        let target = metrics(0.02, 0.03, 0.08, 0.2);
        let tuner = FineTuner::default();
        let result = tuner.tune(&target, |_| target);
        assert!(result.converged);
        assert_eq!(result.iterations, 1);
    }

    #[test]
    fn knobs_stay_clamped() {
        // Pathological eval that always reports tiny misses: knobs must
        // grow but stay within bounds.
        let target = metrics(0.5, 0.5, 0.5, 0.5);
        let tuner = FineTuner { max_iterations: 20, ..Default::default() };
        let result = tuner.tune(&target, |_| metrics(1e-6, 1e-6, 1e-6, 1e-6));
        assert!(!result.converged);
        assert!(result.knobs.dmem_scale <= 16.0);
        assert!(result.knobs.branch_scale <= 8.0);
        assert!(result.knobs.dmem_locality >= -0.9);
        assert!(result.knobs.imem_locality >= -0.9);
    }

    #[test]
    fn history_records_every_iteration() {
        let target = metrics(0.04, 0.05, 0.10, 0.30);
        let tuner = FineTuner { max_iterations: 4, tolerance_pct: 0.0001, gain: 0.6 };
        let result = tuner.tune(&target, toy_eval(&target));
        assert_eq!(result.history.len(), 4);
    }
}
