//! The discrete-event queue.
//!
//! The simulator is organised as per-machine state machines (the kernel's
//! `Machine`/`Cluster`) driven by [`EventQueue`]s. Ordering is by
//! `(time, src, sequence)`: events scheduled for the same instant pop in
//! source order, then insertion order within a source. The `src` component
//! is the scheduling node's id, which makes same-timestamp cross-node
//! deliveries a *total* order independent of the merge order the parallel
//! engine happened to produce — a queue that only tie-broke on insertion
//! sequence would make the pop order depend on which worker finished its
//! window first. [`EventQueue::push`] (src 0) keeps single-source callers
//! working unchanged; the cluster uses [`EventQueue::push_from`].
//!
//! Internally the queue is a two-lane structure: a bucketed near-future
//! calendar (64 buckets × 1 µs, one horizon ahead of the pop cursor)
//! absorbs the dense short-range scheduling the kernel generates — slice
//! completions, message deliveries, wakeups — in O(1) per push, while a
//! binary heap backstops everything beyond the horizon (and anything
//! scheduled at or before the cursor). Pops compare the two lane heads by
//! `(time, src, seq)`, so the merged order is exactly the order the plain
//! heap produced; the split is invisible to callers.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Width of one calendar bucket in nanoseconds.
const BUCKET_NS: u64 = 1024;
/// Number of calendar buckets; the near-future horizon is
/// `BUCKET_COUNT * BUCKET_NS` ≈ 65 µs.
const BUCKET_COUNT: usize = 64;

/// The total-order key of a queue entry: `(time, src, seq)`.
type Key = (SimTime, u32, u64);

struct Entry<E> {
    time: SimTime,
    src: u32,
    seq: u64,
    event: E,
}

impl<E> Entry<E> {
    fn key(&self) -> Key {
        (self.time, self.src, self.seq)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other.key().cmp(&self.key())
    }
}

/// Cumulative queue-throughput counters, maintained unconditionally (two
/// integer bumps per operation) so observability sampling can read them
/// without changing queue behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Total events ever pushed.
    pub pushes: u64,
    /// Total events ever popped.
    pub pops: u64,
    /// Largest pending-event count observed.
    pub high_water: usize,
}

/// A deterministic future-event list.
///
/// # Example
///
/// ```
/// use ditto_sim::engine::EventQueue;
/// use ditto_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), 'b');
/// q.push(SimTime::from_nanos(10), 'c');
/// q.push(SimTime::from_nanos(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Near-future calendar lane. Entries in bucket `(t / BUCKET_NS) %
    /// BUCKET_COUNT` all satisfy `cursor <= t < cursor + horizon`, because
    /// pushes only land here when within the horizon of the cursor and the
    /// cursor (the last popped time) never decreases nor passes a pending
    /// entry. Hence every bucket holds at most one "lap" and the first
    /// non-empty bucket at or after the cursor's contains the lane's
    /// earliest entry.
    buckets: Vec<Vec<Entry<E>>>,
    bucketed: usize,
    /// `(time, src, seq)` of the earliest bucketed entry; `None` iff the
    /// lane is empty. Maintained incrementally on push, rebuilt on pop.
    bucket_head: Option<Key>,
    /// Time of the most recent pop; all pending entries are at or after it.
    cursor: SimTime,
    seq: u64,
    stats: QueueStats,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            buckets: (0..BUCKET_COUNT).map(|_| Vec::new()).collect(),
            bucketed: 0,
            bucket_head: None,
            cursor: SimTime::ZERO,
            seq: 0,
            stats: QueueStats::default(),
        }
    }

    fn bucket_of(time: SimTime) -> usize {
        ((time.as_nanos() / BUCKET_NS) % BUCKET_COUNT as u64) as usize
    }

    /// Whether `time` falls in the bucketable near-future window: at or
    /// after the cursor, and within `BUCKET_COUNT` *slots* of the cursor's
    /// slot. Slot- (not cursor-)aligned so that the occupied slots are
    /// always unique modulo `BUCKET_COUNT` — one lap, no collisions in the
    /// boundary bucket.
    fn in_window(&self, time: SimTime) -> bool {
        time >= self.cursor
            && time.as_nanos() / BUCKET_NS - self.cursor.as_nanos() / BUCKET_NS
                < BUCKET_COUNT as u64
    }

    /// Schedules `event` at absolute time `time` from source 0 — the
    /// single-source form; see [`EventQueue::push_from`].
    pub fn push(&mut self, time: SimTime, event: E) {
        self.push_from(time, 0, event);
    }

    /// Schedules `event` at absolute time `time` on behalf of scheduling
    /// source `src` (the node id in the cluster). Entries order by
    /// `(time, src, seq)`, so same-timestamp events from different sources
    /// pop in source order no matter which order they were merged in.
    pub fn push_from(&mut self, time: SimTime, src: u32, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.stats.pushes += 1;
        let entry = Entry { time, src, seq, event };
        if self.in_window(time) {
            let key = entry.key();
            self.buckets[Self::bucket_of(time)].push(entry);
            self.bucketed += 1;
            if self.bucket_head.is_none_or(|h| key < h) {
                self.bucket_head = Some(key);
            }
        } else {
            self.heap.push(entry);
        }
        self.stats.high_water = self.stats.high_water.max(self.len());
    }

    /// Finds the `(time, src, seq)` of the earliest bucketed entry by
    /// scanning buckets in slot order from the cursor's bucket.
    fn scan_bucket_head(&self) -> Option<Key> {
        if self.bucketed == 0 {
            return None;
        }
        let start = Self::bucket_of(self.cursor);
        for i in 0..BUCKET_COUNT {
            let b = &self.buckets[(start + i) % BUCKET_COUNT];
            if let Some(head) = b.iter().map(Entry::key).min() {
                return Some(head);
            }
        }
        unreachable!("bucketed count positive but no bucket entry found");
    }

    /// Removes and returns the earliest event, if any. Ties pop in
    /// `(src, insertion)` order.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let take_bucket = match (self.bucket_head, self.heap.peek()) {
            (Some(bh), Some(hh)) => bh < hh.key(),
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        self.stats.pops += 1;
        if take_bucket {
            let (time, _, seq) = self.bucket_head.expect("bucket lane head");
            let bucket = &mut self.buckets[Self::bucket_of(time)];
            let idx = bucket
                .iter()
                .position(|e| e.seq == seq)
                .expect("bucket head entry present");
            let entry = bucket.swap_remove(idx);
            self.bucketed -= 1;
            self.cursor = entry.time;
            self.bucket_head = self.scan_bucket_head();
            Some((entry.time, entry.event))
        } else {
            let entry = self.heap.pop().expect("heap head");
            self.cursor = entry.time;
            // Advancing the cursor can strand bucketed entries behind it
            // only if they were earlier than this pop — impossible, since
            // the bucket head lost the comparison. The lane invariant
            // (entries within [cursor, horizon)) is thus preserved.
            Some((entry.time, entry.event))
        }
    }

    /// Returns the time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        let heap_head = self.heap.peek().map(Entry::key);
        match (self.bucket_head, heap_head) {
            (Some(b), Some(h)) => Some(b.min(h).0),
            (Some(b), None) => Some(b.0),
            (None, Some(h)) => Some(h.0),
            (None, None) => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.bucketed
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative push/pop/high-water statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.bucketed = 0;
        self.bucket_head = None;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.len())
            .field("bucketed", &self.bucketed)
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn stats_track_pushes_pops_and_high_water() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1), 'a');
        q.push(SimTime::from_nanos(2), 'b');
        q.pop();
        q.push(SimTime::from_nanos(3), 'c');
        let s = q.stats();
        assert_eq!((s.pushes, s.pops, s.high_water), (3, 1, 2));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 'a');
        q.push(SimTime::from_nanos(30), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_nanos(20), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }

    #[test]
    fn ties_pop_fifo_across_lanes() {
        // The same timestamp can live in both lanes: pushed while beyond
        // the horizon (heap) and again once the cursor caught up (bucket).
        // The merged order must still be pure insertion order.
        let mut q = EventQueue::new();
        let far = SimTime::from_nanos(BUCKET_NS * BUCKET_COUNT as u64 + 500);
        q.push(far, 0); // beyond horizon of cursor 0 → heap
        q.push(SimTime::from_nanos(100), 10); // near → bucket
        assert_eq!(q.pop().unwrap().1, 10); // cursor now 100; `far` within horizon
        q.push(far, 1); // → bucket
        q.push(far, 2); // → bucket
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn past_times_after_cursor_advance_still_pop_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1_000), 'b');
        assert_eq!(q.pop().unwrap().1, 'b'); // cursor = 1000
        q.push(SimTime::from_nanos(500), 'p'); // "in the past" → heap lane
        q.push(SimTime::from_nanos(1_200), 'n');
        assert_eq!(q.pop().unwrap().1, 'p');
        assert_eq!(q.pop().unwrap().1, 'n');
    }

    #[test]
    fn matches_reference_heap_on_random_workload() {
        // Drive the two-lane queue and a plain (time, src, seq) reference
        // model with an identical deterministic push/pop script spanning
        // bucket widths, horizon boundaries, sources, and ties.
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u32, u64, u32)> = Vec::new(); // (time, src, seq, id)
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for id in 0..20_000u32 {
            if next() % 3 != 0 {
                // Push at now + a mix of sub-bucket, sub-horizon, and
                // beyond-horizon offsets, from a handful of sources.
                let off = match next() % 4 {
                    0 => next() % 100,
                    1 => next() % (BUCKET_NS * 3),
                    2 => next() % (BUCKET_NS * BUCKET_COUNT as u64 * 2),
                    _ => 0,
                };
                let t = now + off;
                let src = (next() % 5) as u32;
                q.push_from(SimTime::from_nanos(t), src, id);
                reference.push((t, src, seq, id));
                seq += 1;
            } else if !reference.is_empty() {
                let min_idx = (0..reference.len())
                    .min_by_key(|&i| (reference[i].0, reference[i].1, reference[i].2))
                    .unwrap();
                let (t, _, _, id) = reference.remove(min_idx);
                let (qt, qid) = q.pop().expect("queue agrees non-empty");
                assert_eq!((qt.as_nanos(), qid), (t, id));
                now = t;
            }
            assert_eq!(q.len(), reference.len());
        }
        while let Some((t, id)) = q.pop() {
            let min_idx = (0..reference.len())
                .min_by_key(|&i| (reference[i].0, reference[i].1, reference[i].2))
                .unwrap();
            let (rt, _, _, rid) = reference.remove(min_idx);
            assert_eq!((t.as_nanos(), id), (rt, rid));
        }
        assert!(reference.is_empty());
    }

    /// Regression (PR 7 satellite): same-timestamp events from *different*
    /// sources pop in source order regardless of push order — the property
    /// that makes cross-node deliveries independent of which worker merged
    /// its outbox first in the parallel engine.
    #[test]
    fn same_time_cross_source_events_pop_in_source_order() {
        let t = SimTime::from_nanos(4_096);
        // Push in scrambled source order, twice per source.
        let mut a = EventQueue::new();
        for &src in &[3u32, 0, 2, 1, 3, 1, 0, 2] {
            a.push_from(t, src, (src, a.len()));
        }
        // Push the same multiset in a different (merge) order.
        let mut b = EventQueue::new();
        for &src in &[0u32, 0, 1, 1, 2, 2, 3, 3] {
            b.push_from(t, src, (src, b.len()));
        }
        let srcs_a: Vec<u32> = std::iter::from_fn(|| a.pop().map(|(_, (s, _))| s)).collect();
        let srcs_b: Vec<u32> = std::iter::from_fn(|| b.pop().map(|(_, (s, _))| s)).collect();
        assert_eq!(srcs_a, [0, 0, 1, 1, 2, 2, 3, 3]);
        assert_eq!(srcs_a, srcs_b, "pop order must not depend on merge order");
        // Within one source, insertion order still wins.
        let mut c = EventQueue::new();
        c.push_from(t, 7, 'x');
        c.push_from(t, 7, 'y');
        assert_eq!(c.pop().unwrap().1, 'x');
        assert_eq!(c.pop().unwrap().1, 'y');
    }

    /// The same-timestamp / cross-lane property holds when the sources
    /// land in different lanes (heap vs calendar).
    #[test]
    fn cross_source_order_holds_across_lanes() {
        let mut q = EventQueue::new();
        let far = SimTime::from_nanos(BUCKET_NS * BUCKET_COUNT as u64 + 500);
        q.push_from(far, 2, "heap-src2"); // beyond horizon → heap
        q.push_from(SimTime::from_nanos(10), 0, "early");
        assert_eq!(q.pop().unwrap().1, "early"); // cursor: 10, `far` now in window
        q.push_from(far, 1, "bucket-src1"); // → calendar lane
        assert_eq!(q.pop().unwrap().1, "bucket-src1", "src 1 before src 2 across lanes");
        assert_eq!(q.pop().unwrap().1, "heap-src2");
    }
}
