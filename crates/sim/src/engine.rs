//! The discrete-event queue.
//!
//! The simulator is organised as one big state machine (the kernel's
//! `Machine`/`Cluster`) driven by an [`EventQueue`]. The queue is a binary
//! heap ordered by `(time, sequence)`: events scheduled for the same instant
//! pop in insertion order, which keeps whole-system runs deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// # Example
///
/// ```
/// use ditto_sim::engine::EventQueue;
/// use ditto_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(10), 'b');
/// q.push(SimTime::from_nanos(10), 'c');
/// q.push(SimTime::from_nanos(5), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Schedules `event` at absolute time `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any. Ties pop FIFO.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Returns the time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("next", &self.peek_time())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 'a');
        q.push(SimTime::from_nanos(30), 'c');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_nanos(20), 'b');
        assert_eq!(q.pop().unwrap().1, 'b');
        assert_eq!(q.pop().unwrap().1, 'c');
    }
}
