//! Power-of-two quantization helpers.
//!
//! The paper quantizes several profile dimensions on log-2 scales: branch
//! taken/transition rates from 2⁻¹ to 2⁻¹⁰ (§4.4.3), dependency distances
//! into 11 exponential bins from 1 to 1024 (§4.4.6), and working-set sizes
//! from one cache line to the full allocation, doubling each step (§4.4.4).
//! These helpers implement those bins once so profiler and generator agree.

use serde::{Deserialize, Serialize};

/// Number of log-scale rate bins (2⁻¹ … 2⁻¹⁰), per §4.4.3.
pub const RATE_BINS: usize = 10;

/// Number of dependency-distance bins (1, 2, 4, …, 1024), per §4.4.6.
pub const DEP_BINS: usize = 11;

/// Quantizes a probability in `(0, 1]` to a rate bin index `0..RATE_BINS`,
/// where bin `k` represents the rate `2^-(k+1)`.
///
/// Rates above `2^-1` clamp into bin 0 and rates below `2^-10` into the last
/// bin, matching the paper's range.
///
/// # Example
///
/// ```
/// use ditto_sim::quant::{rate_bin, rate_from_bin};
/// assert_eq!(rate_bin(0.5), 0);
/// assert_eq!(rate_bin(0.25), 1);
/// assert_eq!(rate_from_bin(1), 0.25);
/// ```
pub fn rate_bin(p: f64) -> usize {
    if p <= 0.0 {
        return RATE_BINS - 1;
    }
    let exp = -p.log2();
    let k = exp.round() as i64 - 1;
    k.clamp(0, RATE_BINS as i64 - 1) as usize
}

/// The representative rate for a rate bin: `2^-(bin+1)`.
pub fn rate_from_bin(bin: usize) -> f64 {
    2f64.powi(-((bin.min(RATE_BINS - 1) as i32) + 1))
}

/// Quantizes a dependency distance (in instructions) into one of the
/// [`DEP_BINS`] exponential bins `1, 2, 4, …, 1024`.
///
/// Distances beyond 1024 land in the last bin: the paper notes larger
/// distances no longer affect ILP because of the bounded reorder buffer.
pub fn dep_bin(distance: u64) -> usize {
    if distance <= 1 {
        return 0;
    }
    let b = 64 - (distance - 1).leading_zeros() as usize; // ceil(log2(distance))
    b.min(DEP_BINS - 1)
}

/// The representative distance for a dependency bin: `2^bin`.
pub fn dep_from_bin(bin: usize) -> u64 {
    1u64 << bin.min(DEP_BINS - 1)
}

/// Rounds `bytes` up to the next power of two, with a floor of 64 (one
/// cache line). Working-set profiles are indexed by these sizes.
pub fn working_set_ceil(bytes: u64) -> u64 {
    bytes.max(64).next_power_of_two()
}

/// Index of the working-set size `2^i` bytes relative to the 64-byte floor:
/// 64 B → 0, 128 B → 1, …
///
/// # Panics
///
/// Panics if `size` is not a power of two or is below 64.
pub fn working_set_index(size: u64) -> usize {
    assert!(size >= 64 && size.is_power_of_two(), "bad working-set size {size}");
    (size.trailing_zeros() - 6) as usize
}

/// The working-set size for an index: `64 << index`.
pub fn working_set_size(index: usize) -> u64 {
    64u64 << index
}

/// A histogram over fixed bins, with helpers to normalize into a
/// probability distribution. Shared by the branch, dependency and
/// working-set profilers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BinHistogram {
    counts: Vec<u64>,
}

/// Equality ignores trailing zero bins: the bin vector grows on demand,
/// so two histograms holding the same observations can differ in length
/// (e.g. `new(10)` vs `default()`, or one that briefly saw a high bin).
/// Deriving `PartialEq` on the raw `Vec` made such pairs compare unequal
/// and broke golden-output comparisons.
impl PartialEq for BinHistogram {
    fn eq(&self, other: &Self) -> bool {
        let bins = self.counts.len().max(other.counts.len());
        (0..bins).all(|b| self.count(b) == other.count(b))
    }
}

impl Eq for BinHistogram {}

impl BinHistogram {
    /// Creates a histogram with `bins` zeroed bins.
    pub fn new(bins: usize) -> Self {
        BinHistogram { counts: vec![0; bins] }
    }

    /// Adds `n` observations to `bin`, growing if needed.
    pub fn add(&mut self, bin: usize, n: u64) {
        if bin >= self.counts.len() {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += n;
    }

    /// Count in a bin (0 if out of range).
    pub fn count(&self, bin: usize) -> u64 {
        self.counts.get(bin).copied().unwrap_or(0)
    }

    /// All counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Normalized weights per bin; empty histogram yields all zeros.
    pub fn weights(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the histogram has no bins.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_histogram_equality_ignores_trailing_zeros() {
        // Regression: the derived PartialEq compared raw Vecs, so equal
        // contents at different grown lengths compared unequal.
        assert_eq!(BinHistogram::new(10), BinHistogram::default());

        let mut grown = BinHistogram::default();
        grown.add(2, 5);
        grown.add(40, 1); // grow to 41 bins...
        let mut shrunk = BinHistogram::new(3);
        shrunk.add(2, 5);
        assert_ne!(grown, shrunk);
        shrunk.add(40, 1);
        assert_eq!(grown, shrunk);

        let mut a = BinHistogram::new(1);
        a.add(0, 1);
        let mut b = BinHistogram::new(8);
        b.add(0, 1);
        assert_eq!(a, b, "same counts, different capacity");
        b.add(7, 1);
        assert_ne!(a, b, "a real high bin still distinguishes");

        // The golden-comparison path: serde round-trips preserve equality
        // even though lengths may have been captured at different times.
        let json = serde_json::to_string(&grown).expect("serialize");
        let back: BinHistogram = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(grown, back);
    }

    #[test]
    fn rate_bins_match_paper_range() {
        assert_eq!(rate_bin(0.5), 0);
        assert_eq!(rate_bin(0.25), 1);
        assert_eq!(rate_bin(2f64.powi(-10)), 9);
        assert_eq!(rate_bin(0.9), 0); // clamps high
        assert_eq!(rate_bin(1e-9), RATE_BINS - 1); // clamps low
        assert_eq!(rate_bin(0.0), RATE_BINS - 1);
    }

    #[test]
    fn rate_roundtrip() {
        for bin in 0..RATE_BINS {
            assert_eq!(rate_bin(rate_from_bin(bin)), bin);
        }
    }

    #[test]
    fn dep_bins_are_exponential() {
        assert_eq!(dep_bin(1), 0);
        assert_eq!(dep_bin(2), 1);
        assert_eq!(dep_bin(3), 2);
        assert_eq!(dep_bin(4), 2);
        assert_eq!(dep_bin(1024), 10);
        assert_eq!(dep_bin(100_000), DEP_BINS - 1);
        assert_eq!(dep_bin(0), 0);
    }

    #[test]
    fn dep_roundtrip() {
        for bin in 0..DEP_BINS {
            assert_eq!(dep_bin(dep_from_bin(bin)), bin);
        }
    }

    #[test]
    fn working_set_helpers() {
        assert_eq!(working_set_ceil(1), 64);
        assert_eq!(working_set_ceil(65), 128);
        assert_eq!(working_set_index(64), 0);
        assert_eq!(working_set_index(1 << 20), 14);
        assert_eq!(working_set_size(14), 1 << 20);
    }

    #[test]
    fn histogram_accumulates_and_normalizes() {
        let mut h = BinHistogram::new(2);
        h.add(0, 3);
        h.add(1, 1);
        h.add(5, 4); // grows
        assert_eq!(h.total(), 8);
        assert_eq!(h.len(), 6);
        let w = h.weights();
        assert!((w[0] - 0.375).abs() < 1e-12);
        assert!((w[5] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_weights_are_zero() {
        let h = BinHistogram::new(3);
        assert_eq!(h.weights(), vec![0.0; 3]);
        assert_eq!(h.total(), 0);
    }
}
