//! Seeded, splittable randomness.
//!
//! Every stochastic component (load generators, application bodies, device
//! models, the Ditto body generator, the chaos fault plane) draws from a
//! [`SimRng`] derived from an experiment-level seed, so whole experiments
//! replay bit-identically.
//!
//! The generator is a self-contained PCG-64 MCG (128-bit multiplicative
//! congruential state with an XSL-RR output permutation) — vendored inline
//! because the build environment has no access to the `rand`/`rand_pcg`
//! crates. The stream is fixed by this implementation and never changes
//! between runs of the same binary, which is the property the simulator
//! actually relies on.

/// 128-bit PCG multiplier (PCG reference implementation constant).
const PCG_MUL: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_6d61;

/// SplitMix64 step, used to expand 64-bit seeds into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One SplitMix64 finalisation of `x`: a full-avalanche 64-bit mix where
/// every input bit flips each output bit with probability ~1/2.
pub fn splitmix64_mix(x: u64) -> u64 {
    let mut state = x;
    splitmix64(&mut state)
}

/// Derives the seed of stream `index` rooted at `seed`.
///
/// Used wherever an experiment-level seed must be fanned out into
/// independent per-experiment (or per-iteration) streams: the fleet
/// runner derives experiment `i`'s seed as `stream_seed(seed, i)`, and
/// the fine-tuning loop derives iteration seeds the same way. Because the
/// index is avalanche-mixed before the XOR, streams of *different* base
/// seeds never collide through simple arithmetic relationships between
/// the bases — unlike e.g. `seed ^ (index << 16)`, where bases differing
/// only in high bits alias each other's streams.
pub fn stream_seed(seed: u64, index: u64) -> u64 {
    seed ^ splitmix64_mix(index)
}

/// A deterministic PCG-64 generator with domain-separated splitting.
///
/// # Example
///
/// ```
/// use ditto_sim::rng::SimRng;
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u128,
    /// Draws consumed since construction. The simulation fast path uses
    /// this to prove an execution region consumed no randomness (and, when
    /// it did, to advance the stream by the exact draw count).
    draws: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        let mut sm = seed;
        let lo = splitmix64(&mut sm);
        let hi = splitmix64(&mut sm);
        // MCG state must be odd.
        SimRng { state: ((u128::from(hi) << 64) | u128::from(lo)) | 1, draws: 0 }
    }

    /// Number of uniform draws consumed so far.
    pub fn draws(&self) -> u64 {
        self.draws
    }

    /// Advances the stream as if `n` draws had been consumed, in O(log n).
    ///
    /// Bit-exact with calling [`SimRng::next_u64`] `n` times and discarding
    /// the results: the MCG state recurrence `s' = s · M` telescopes to
    /// `s · Mⁿ`, computed by binary exponentiation.
    pub fn advance(&mut self, n: u64) {
        let mut mult: u128 = 1;
        let mut base = PCG_MUL;
        let mut k = n;
        while k != 0 {
            if k & 1 == 1 {
                mult = mult.wrapping_mul(base);
            }
            base = base.wrapping_mul(base);
            k >>= 1;
        }
        self.state = self.state.wrapping_mul(mult);
        self.draws += n;
    }

    /// Derives an independent child generator for the given domain label.
    ///
    /// Children with distinct labels produce uncorrelated streams; the same
    /// label always yields the same child, so components can be constructed
    /// in any order without perturbing each other.
    pub fn split(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Mix the label hash with a fingerprint of this generator's seed
        // position without advancing self.
        let mut probe = self.clone();
        let base = probe.next_u64();
        SimRng::seed(base ^ h)
    }

    /// Uniform `u64` (PCG XSL-RR output permutation).
    pub fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        self.state = self.state.wrapping_mul(PCG_MUL);
        let s = self.state;
        let rot = (s >> 122) as u32;
        let xored = ((s >> 64) as u64) ^ (s as u64);
        xored.rotate_right(rot)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift reduction; the bias for simulator-scale
        // `n` is ≪ 2^-64 per draw and irrelevant here.
        let wide = u128::from(self.next_u64()) * u128::from(n);
        (wide >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        let i = self.below(items.len() as u64) as usize;
        &items[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_is_stable_and_distinct() {
        let root = SimRng::seed(1);
        let mut c1 = root.split("alpha");
        let mut c1b = root.split("alpha");
        let mut c2 = root.split("beta");
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn split_does_not_advance_parent() {
        let mut a = SimRng::seed(3);
        let mut b = SimRng::seed(3);
        let _ = b.split("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn stream_seeds_are_distinct_and_stable() {
        let base = 0xD177_0BA5;
        let seeds: Vec<u64> = (0..64).map(|i| stream_seed(base, i)).collect();
        for (i, &a) in seeds.iter().enumerate() {
            assert_eq!(a, stream_seed(base, i as u64), "stream {i} not stable");
            for &b in &seeds[i + 1..] {
                assert_ne!(a, b, "stream collision under base {base:#x}");
            }
        }
    }

    #[test]
    fn streams_of_high_bit_related_bases_do_not_alias() {
        // The failure mode of shift-based derivations: bases differing
        // only in bits ≥ 16 alias each other's streams. The mixed
        // derivation must keep them disjoint.
        let a = 0x42;
        for shift in 16..48 {
            let b = a ^ (1u64 << shift);
            let from_a: Vec<u64> = (0..32).map(|i| stream_seed(a, i)).collect();
            for j in 0..32 {
                let s = stream_seed(b, j);
                assert!(!from_a.contains(&s), "alias at shift {shift} index {j}");
                assert_ne!(s, a, "stream of {b:#x} collides with base {a:#x}");
            }
        }
    }

    #[test]
    fn advance_matches_sequential_draws() {
        for n in [0u64, 1, 2, 3, 7, 64, 1_000, 123_457] {
            let mut seq = SimRng::seed(0xFEED);
            let mut jump = SimRng::seed(0xFEED);
            for _ in 0..n {
                seq.next_u64();
            }
            jump.advance(n);
            assert_eq!(seq.draws(), n);
            assert_eq!(jump.draws(), n);
            assert_eq!(seq.next_u64(), jump.next_u64(), "divergence after advance({n})");
        }
    }

    #[test]
    fn draw_counter_tracks_consumption_only() {
        let mut r = SimRng::seed(5);
        assert_eq!(r.draws(), 0);
        r.next_u64();
        r.f64();
        r.below(10);
        assert_eq!(r.draws(), 3);
        // Degenerate Bernoulli draws consume nothing.
        r.chance(0.0);
        r.chance(1.0);
        assert_eq!(r.draws(), 3);
        r.chance(0.5);
        assert_eq!(r.draws(), 4);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = SimRng::seed(11);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut r = SimRng::seed(13);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_uniform_enough() {
        let mut r = SimRng::seed(17);
        let mean: f64 = (0..10_000).map(|_| r.f64()).sum::<f64>() / 10_000.0;
        assert!((0.47..0.53).contains(&mean), "mean {mean}");
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
