//! Seeded, splittable randomness.
//!
//! Every stochastic component (load generators, application bodies, device
//! models, the Ditto body generator) draws from a [`SimRng`] derived from an
//! experiment-level seed, so whole experiments replay bit-identically.

use rand::{Rng, RngCore, SeedableRng};
use rand_pcg::Pcg64Mcg;

/// A deterministic PCG-64 generator with domain-separated splitting.
///
/// # Example
///
/// ```
/// use ditto_sim::rng::SimRng;
/// let mut a = SimRng::seed(42);
/// let mut b = SimRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Pcg64Mcg,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        SimRng { inner: Pcg64Mcg::seed_from_u64(seed) }
    }

    /// Derives an independent child generator for the given domain label.
    ///
    /// Children with distinct labels produce uncorrelated streams; the same
    /// label always yields the same child, so components can be constructed
    /// in any order without perturbing each other.
    pub fn split(&self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // Mix the label hash with a fingerprint of this generator's seed
        // position without advancing self.
        let mut probe = self.inner.clone();
        let base = probe.next_u64();
        SimRng::seed(base ^ h)
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Picks a uniformly random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot pick from an empty slice");
        let i = self.below(items.len() as u64) as usize;
        &items[i]
    }

    /// Access to the underlying `rand` generator for distribution sampling.
    pub fn raw(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed(7);
        let mut b = SimRng::seed(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_is_stable_and_distinct() {
        let root = SimRng::seed(1);
        let mut c1 = root.split("alpha");
        let mut c1b = root.split("alpha");
        let mut c2 = root.split("beta");
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn split_does_not_advance_parent() {
        let mut a = SimRng::seed(3);
        let mut b = SimRng::seed(3);
        let _ = b.split("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = SimRng::seed(11);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn pick_covers_all_elements() {
        let mut r = SimRng::seed(13);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*r.pick(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
