//! Discrete-event simulation substrate for the Ditto reproduction.
//!
//! This crate is the foundation everything else builds on. It provides:
//!
//! - [`time::SimTime`] / [`time::SimDuration`] — simulated time in
//!   nanoseconds with convenient constructors and arithmetic,
//! - [`engine::EventQueue`] — a deterministic discrete-event queue with
//!   FIFO tie-breaking,
//! - [`rng::SimRng`] — a seeded, splittable PCG random number generator so
//!   every experiment is reproducible,
//! - [`dist`] — the analytic distributions used by workload generators and
//!   device models (exponential, Zipf, log-normal, discrete, …),
//! - [`stats`] — log-bucketed latency histograms with percentile queries and
//!   small helper accumulators,
//! - [`quant`] — the power-of-two quantization helpers shared by the
//!   profilers and generators (the paper quantizes branch rates, dependency
//!   distances and working-set sizes on log scales).
//!
//! # Example
//!
//! ```
//! use ditto_sim::engine::EventQueue;
//! use ditto_sim::time::{SimDuration, SimTime};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_micros(5), "second");
//! q.push(SimTime::ZERO + SimDuration::from_micros(1), "first");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t.as_nanos(), 1_000);
//! ```

pub mod dist;
pub mod engine;
pub mod executor;
pub mod quant;
pub mod rng;
pub mod stats;
pub mod time;

pub use engine::EventQueue;
pub use executor::SimExecutor;
pub use rng::SimRng;
pub use stats::LatencyHistogram;
pub use time::{SimDuration, SimTime};
