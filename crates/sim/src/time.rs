//! Simulated time.
//!
//! All simulation components share a single global clock expressed in
//! nanoseconds. [`SimTime`] is a point on that clock; [`SimDuration`] is a
//! span between two points. Both are thin wrappers over `u64`, cheap to copy
//! and totally ordered, so they can key the event queue directly.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// # Example
///
/// ```
/// use ditto_sim::time::{SimDuration, SimTime};
/// let t = SimTime::ZERO + SimDuration::from_micros(3);
/// assert_eq!(t.as_nanos(), 3_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use ditto_sim::time::SimDuration;
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros_f64(), 2500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// A time far beyond any experiment horizon, usable as a sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns this time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond value.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(50);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d).as_nanos(), 150);
    }

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(b.saturating_since(a).as_nanos(), 10);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_human_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_nanos(100);
        assert_eq!((d * 3u64).as_nanos(), 300);
        assert_eq!((d * 2.5f64).as_nanos(), 250);
        assert_eq!((d / 4).as_nanos(), 25);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration =
            (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }
}
