//! Execution strategy for conservative parallel discrete-event simulation.
//!
//! The kernel's `Cluster` decomposes a run into one logical process (LP)
//! per machine; cross-node messages are the only inter-LP edges, so the
//! minimum network link latency bounds how far one LP's events can affect
//! another. This module holds the pieces of that scheme that are pure or
//! generic:
//!
//! - [`SimExecutor`] — the per-run strategy selector (sequential vs.
//!   parallel with a pinned worker count),
//! - [`conservative_lookahead`] / [`window_end`] — the window math: given
//!   the earliest pending event at `T0` and lookahead `W` (the min
//!   cross-LP link latency), every event strictly before `T0 + W` is safe
//!   to execute without inter-LP coordination, because any message sent
//!   inside the window arrives at or after its end. Zero-latency edges
//!   degenerate to the barrier fallback: single-instant windows.
//! - [`run_windows`] — a persistent worker gang that executes one window
//!   after another without re-spawning threads per window.
//!
//! The determinism contract: both executors run the *same* windowed
//! algorithm; the parallel one only changes which OS thread advances an
//! LP. Every merge back into shared state happens on the coordinating
//! thread in LP-index order, so all measured outputs are byte-identical
//! at any worker count.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a cluster run executes its logical processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimExecutor {
    /// One thread drains the windows in LP-index order (the default).
    #[default]
    Sequential,
    /// A gang of `workers` OS threads claims LPs within each window.
    Parallel {
        /// Worker thread count (clamped to at least 1).
        workers: usize,
    },
}

impl SimExecutor {
    /// A parallel executor sized from the environment: the
    /// `RAYON_NUM_THREADS` convention if set, otherwise the host's
    /// available parallelism.
    pub fn parallel_ambient() -> Self {
        let workers = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            });
        SimExecutor::Parallel { workers }
    }

    /// The effective worker count (1 for sequential).
    pub fn workers(&self) -> usize {
        match *self {
            SimExecutor::Sequential => 1,
            SimExecutor::Parallel { workers } => workers.max(1),
        }
    }

    /// Whether this strategy uses the worker gang.
    pub fn is_parallel(&self) -> bool {
        matches!(self, SimExecutor::Parallel { .. }) && self.workers() > 1
    }
}

/// The conservative lookahead: the minimum latency over all cross-LP
/// edges, in nanoseconds. An event executing at `t` can only schedule
/// work on *another* LP at or after `t + lookahead`, so all LPs may
/// safely advance to `T0 + lookahead` in parallel. No edges (a
/// single-machine cluster) means no cross-LP constraint at all:
/// `u64::MAX`.
pub fn conservative_lookahead(edge_latencies_ns: impl IntoIterator<Item = u64>) -> u64 {
    edge_latencies_ns.into_iter().min().unwrap_or(u64::MAX)
}

/// The exclusive end of the safe execution window opening at `t0`.
///
/// `cap` is the hard ceiling from the driver (the run deadline and the
/// next fault-plan epoch, whichever is sooner); callers guarantee
/// `t0 < cap`. A zero lookahead — some edge has zero latency — falls
/// back to the barrier: a single-nanosecond window, which serializes
/// instants globally exactly like the sequential engine's event loop.
pub fn window_end(t0: u64, lookahead_ns: u64, cap: u64) -> u64 {
    debug_assert!(t0 < cap, "window must open before its cap ({t0} >= {cap})");
    let w = lookahead_ns.max(1);
    t0.saturating_add(w).min(cap)
}

/// Raw-pointer handle sharing a slot array with the gang. Soundness
/// protocol: during a round each worker only touches the slots whose
/// indices it claimed from the round cursor (disjoint by construction);
/// between rounds — all workers parked on the generation counter — the
/// coordinating thread has exclusive access to the whole slice.
struct SlotsPtr<T> {
    ptr: *mut T,
    len: usize,
}

unsafe impl<T: Send> Sync for SlotsPtr<T> {}

struct RoundState {
    /// Round number, bumped (Release) by the coordinator to dispatch.
    generation: AtomicU64,
    /// Next position in the active list to claim.
    cursor: AtomicUsize,
    /// Slots not yet finished in the current round.
    pending: AtomicUsize,
    /// Set (Release) by the coordinator to shut the gang down.
    stop: AtomicBool,
    /// The indices to run this round; rewritten by the coordinator only
    /// while every worker is parked, published by the generation bump.
    active: Mutex<Vec<usize>>,
}

/// Spin-wait with a yield escape so oversubscribed gangs (more workers
/// than cores, as the differential suite's 8-worker case on a 2-core CI
/// box) still make progress.
fn spin_wait(spins: &mut u32) {
    *spins += 1;
    if spins.is_multiple_of(64) {
        std::thread::yield_now();
    } else {
        std::hint::spin_loop();
    }
}

/// Runs rounds of disjoint slot work on a persistent gang.
///
/// Each iteration the coordinator calls `next(slots)` with exclusive
/// access to every slot — this is where windows are planned and outboxes
/// merged — and receives the indices to execute, or `None` to finish.
/// The gang then runs `run(index, &mut slots[index])` for every active
/// index, claiming indices atomically, and the coordinator resumes once
/// all are done. With `workers <= 1` everything runs inline on the
/// caller's thread; the execution order *within* a round is unordered in
/// both modes by contract (slots must not care), which is what makes the
/// two modes behaviourally identical.
pub fn run_windows<T, FNext, FRun>(slots: &mut [T], workers: usize, mut next: FNext, run: FRun)
where
    T: Send,
    FNext: FnMut(&mut [T]) -> Option<Vec<usize>>,
    FRun: Fn(usize, &mut T) + Sync,
{
    if workers <= 1 || slots.len() <= 1 {
        while let Some(active) = next(slots) {
            for i in active {
                run(i, &mut slots[i]);
            }
        }
        return;
    }

    let shared = SlotsPtr { ptr: slots.as_mut_ptr(), len: slots.len() };
    let rounds = RoundState {
        generation: AtomicU64::new(0),
        cursor: AtomicUsize::new(0),
        pending: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        active: Mutex::new(Vec::new()),
    };
    let gang = workers.min(slots.len());

    std::thread::scope(|scope| {
        for _ in 0..gang {
            let rounds = &rounds;
            let shared = &shared;
            let run = &run;
            scope.spawn(move || {
                let mut seen = 0u64;
                let mut spins = 0u32;
                loop {
                    let g = rounds.generation.load(Ordering::Acquire);
                    if g == seen {
                        if rounds.stop.load(Ordering::Acquire) {
                            return;
                        }
                        spin_wait(&mut spins);
                        continue;
                    }
                    seen = g;
                    spins = 0;
                    // The coordinator never rewrites `active` while a
                    // round is in flight, so this lock is uncontended
                    // with mutation; it exists to give the borrow a
                    // lifetime the compiler accepts.
                    let active = rounds.active.lock().expect("gang active list");
                    loop {
                        let k = rounds.cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= active.len() {
                            break;
                        }
                        let i = active[k];
                        debug_assert!(i < shared.len);
                        // Safety: `i` was claimed exclusively above.
                        run(i, unsafe { &mut *shared.ptr.add(i) });
                        rounds.pending.fetch_sub(1, Ordering::Release);
                    }
                }
            });
        }

        loop {
            // Safety: all workers are parked (pending hit zero below, or
            // no round dispatched yet), so the coordinator is the only
            // thread touching the slots.
            let all = unsafe { std::slice::from_raw_parts_mut(shared.ptr, shared.len) };
            let Some(active) = next(all) else {
                rounds.stop.store(true, Ordering::Release);
                break;
            };
            if active.is_empty() {
                continue;
            }
            let n = active.len();
            *rounds.active.lock().expect("gang active list") = active;
            rounds.cursor.store(0, Ordering::Relaxed);
            rounds.pending.store(n, Ordering::Relaxed);
            rounds.generation.fetch_add(1, Ordering::Release);
            let mut spins = 0u32;
            while rounds.pending.load(Ordering::Acquire) != 0 {
                spin_wait(&mut spins);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn executor_defaults_and_workers() {
        assert_eq!(SimExecutor::default(), SimExecutor::Sequential);
        assert_eq!(SimExecutor::Sequential.workers(), 1);
        assert!(!SimExecutor::Sequential.is_parallel());
        assert_eq!(SimExecutor::Parallel { workers: 0 }.workers(), 1);
        assert!(!SimExecutor::Parallel { workers: 1 }.is_parallel());
        assert!(SimExecutor::Parallel { workers: 8 }.is_parallel());
        assert!(SimExecutor::parallel_ambient().workers() >= 1);
    }

    /// Property: the safe window never exceeds the true minimum cross-LP
    /// latency — for random edge sets, `window_end - t0 <= min(edges)`
    /// (when any edge exists and the cap doesn't bite first).
    #[test]
    fn window_never_exceeds_true_min_edge_latency() {
        let mut rng = SimRng::seed(0x10AD_AEAD);
        for _ in 0..500 {
            let n = 1 + (rng.next_u64() % 12) as usize;
            let edges: Vec<u64> = (0..n).map(|_| rng.next_u64() % 50_000).collect();
            let t0 = rng.next_u64() % 1_000_000;
            let cap = t0 + 1 + rng.next_u64() % 1_000_000;
            let w = conservative_lookahead(edges.iter().copied());
            let end = window_end(t0, w, cap);
            let true_min = *edges.iter().min().unwrap();
            assert!(
                end - t0 <= true_min.max(1),
                "window {} exceeds min edge latency {true_min}",
                end - t0
            );
            assert!(end > t0, "window must make progress");
            assert!(end <= cap, "window must respect the cap");
        }
    }

    /// Property: lookahead (and hence the window) is monotone under
    /// link-latency increase — growing any edge latency never shrinks
    /// the safe window.
    #[test]
    fn window_is_monotone_under_latency_increase() {
        let mut rng = SimRng::seed(0x0770_0CA0);
        for _ in 0..500 {
            let n = 1 + (rng.next_u64() % 8) as usize;
            let edges: Vec<u64> = (0..n).map(|_| rng.next_u64() % 100_000).collect();
            let bumped: Vec<u64> =
                edges.iter().map(|&e| e + rng.next_u64() % 10_000).collect();
            let t0 = rng.next_u64() % 1_000_000;
            let cap = u64::MAX;
            let before = window_end(t0, conservative_lookahead(edges), cap);
            let after = window_end(t0, conservative_lookahead(bumped), cap);
            assert!(after >= before, "window shrank when latencies grew");
        }
    }

    /// Property: a zero-latency edge degenerates to the barrier — the
    /// window collapses to a single nanosecond no matter what the other
    /// edges look like.
    #[test]
    fn zero_latency_edge_degenerates_to_barrier() {
        let mut rng = SimRng::seed(0x0BA4_41E4);
        for _ in 0..200 {
            let n = (rng.next_u64() % 8) as usize;
            let mut edges: Vec<u64> = (0..n).map(|_| 1 + rng.next_u64() % 100_000).collect();
            edges.insert((rng.next_u64() as usize) % (edges.len() + 1), 0);
            let w = conservative_lookahead(edges);
            assert_eq!(w, 0, "zero edge must dominate the lookahead");
            let t0 = rng.next_u64() % 1_000_000;
            assert_eq!(window_end(t0, w, u64::MAX), t0 + 1, "barrier = 1 ns window");
        }
        // And with no edges at all, only the cap binds.
        assert_eq!(conservative_lookahead([]), u64::MAX);
        assert_eq!(window_end(10, u64::MAX, 400), 400);
    }

    /// The gang and the inline path compute the same thing: a toy
    /// windowed workload (each slot accumulates a deterministic function
    /// of the round) produces identical slot states at 1, 2, and 8
    /// workers, including workers > slots.
    #[test]
    fn gang_matches_inline_execution() {
        let reference = drive(1);
        for workers in [2usize, 3, 8] {
            assert_eq!(drive(workers), reference, "gang diverged at {workers} workers");
        }

        fn drive(workers: usize) -> Vec<u64> {
            let mut slots: Vec<u64> = vec![0; 5];
            let mut round = 0u64;
            run_windows(
                &mut slots,
                workers,
                |slots| {
                    // Coordinator has exclusive access: fold a cross-slot
                    // mix (order-sensitive if any worker were still live).
                    let sum = slots.iter().fold(0u64, |a, &v| a.wrapping_add(v));
                    round += 1;
                    if round > 20 {
                        return None;
                    }
                    slots[0] = slots[0].wrapping_add(sum ^ round);
                    // Vary the active set to cover partial rounds.
                    Some((0..slots.len()).filter(|i| !(i + round as usize).is_multiple_of(4)).collect())
                },
                |i, slot| {
                    *slot = slot.wrapping_mul(31).wrapping_add(i as u64 + 1);
                },
            );
            slots
        }
    }
}
