//! Measurement utilities: latency histograms with percentile queries, and
//! small accumulators used by the evaluation harness.

use serde::{DeError, Deserialize, Serialize, Value};

use crate::time::SimDuration;

/// Number of linear sub-buckets per power-of-two bucket. 32 sub-buckets
/// keeps the relative quantization error under ~3%.
const SUB_BUCKETS: usize = 32;
const BUCKETS: usize = 44; // covers up to ~2^43 ns ≈ 2.4 hours

/// An HdrHistogram-style log-linear latency histogram.
///
/// Values are recorded in nanoseconds; percentile queries return the lower
/// bound of the containing sub-bucket, which bounds relative error by
/// `1/SUB_BUCKETS`.
///
/// # Example
///
/// ```
/// use ditto_sim::stats::LatencyHistogram;
/// use ditto_sim::time::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// for us in 1..=100 {
///     h.record(SimDuration::from_micros(us));
/// }
/// let p50 = h.percentile(50.0).as_micros_f64();
/// assert!((45.0..=55.0).contains(&p50));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

/// Deserialization normalizes `counts` to the canonical bucket layout:
/// short vectors (older snapshots with fewer buckets) are zero-padded,
/// an all-zero overlong tail is dropped, and anything else — an overlong
/// tail holding real counts, or a `total` that disagrees with the bucket
/// sum — is rejected rather than silently mis-merged later.
impl Deserialize for LatencyHistogram {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let mut counts: Vec<u64> = serde::field(v, "counts")?;
        let total: u64 = serde::field(v, "total")?;
        let sum_ns: u128 = serde::field(v, "sum_ns")?;
        let max_ns: u64 = serde::field(v, "max_ns")?;
        let min_ns: u64 = serde::field(v, "min_ns")?;
        let canonical = BUCKETS * SUB_BUCKETS;
        if counts.len() > canonical {
            if counts[canonical..].iter().any(|&c| c != 0) {
                return Err(DeError(format!(
                    "histogram counts have {} buckets with data past the canonical {canonical}",
                    counts.len()
                )));
            }
            counts.truncate(canonical);
        }
        counts.resize(canonical, 0);
        if counts.iter().sum::<u64>() != total {
            return Err(DeError(format!(
                "histogram total {total} disagrees with bucket sum {}",
                counts.iter().sum::<u64>()
            )));
        }
        if total > 0 && min_ns > max_ns {
            return Err(DeError(format!(
                "histogram min {min_ns}ns exceeds max {max_ns}ns"
            )));
        }
        Ok(LatencyHistogram { counts, total, sum_ns, max_ns, min_ns })
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS * SUB_BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    fn index(ns: u64) -> usize {
        if ns < SUB_BUCKETS as u64 {
            return ns as usize;
        }
        let bucket = 63 - ns.leading_zeros() as usize; // floor(log2)
        let shift = bucket - SUB_BUCKETS.trailing_zeros() as usize;
        let sub = (ns >> shift) as usize - SUB_BUCKETS;
        let idx = (shift + 1) * SUB_BUCKETS + sub;
        idx.min(BUCKETS * SUB_BUCKETS - 1)
    }

    fn value_of(idx: usize) -> u64 {
        if idx < SUB_BUCKETS {
            return idx as u64;
        }
        let shift = idx / SUB_BUCKETS - 1;
        let sub = idx % SUB_BUCKETS;
        ((SUB_BUCKETS + sub) as u64) << shift
    }

    /// Records one latency observation.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.counts[Self::index(ns)] += 1;
        self.total += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean latency; zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum_ns / u128::from(self.total)) as u64)
    }

    /// Maximum recorded latency; zero if empty.
    pub fn max(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.max_ns)
        }
    }

    /// Minimum recorded latency; zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Latency at percentile `p` in `[0, 100]`; zero if empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        if rank >= self.total {
            // The top rank is the exactly-tracked maximum; reporting the
            // bucket lower bound would undershoot it (p100 must equal max).
            return SimDuration::from_nanos(self.max_ns);
        }
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // total > 0 here, so min_ns <= max_ns and the clamp is
                // well-formed: bucket lower bounds are pulled into the
                // observed value range.
                return SimDuration::from_nanos(Self::value_of(i).clamp(self.min_ns, self.max_ns));
            }
        }
        SimDuration::from_nanos(self.max_ns)
    }

    /// Convenience bundle of mean/p50/p95/p99.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.total,
            mean: self.mean(),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
            max: self.max(),
        }
    }

    /// Merges another histogram into this one. Length-safe: if `other`
    /// has more buckets (e.g. a deserialized histogram from a newer
    /// layout), this one grows to match instead of silently dropping
    /// `other`'s tail counts while still adding its total.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Summary statistics extracted from a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of observations.
    pub count: u64,
    /// Mean latency.
    pub mean: SimDuration,
    /// Median latency.
    pub p50: SimDuration,
    /// 95th percentile latency.
    pub p95: SimDuration,
    /// 99th percentile latency.
    pub p99: SimDuration,
    /// Maximum latency.
    pub max: SimDuration,
}

impl std::fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p95={} p99={}",
            self.count, self.mean, self.p50, self.p95, self.p99
        )
    }
}

/// Online mean/variance accumulator (Welford).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Running {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Running {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Running::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean; zero if empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; zero with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Relative error `|measured - target| / target` in percent, with a guard
/// for zero targets (returns 0 when both are ~zero, 100 otherwise).
///
/// This is how the evaluation section reports cloning accuracy.
pub fn relative_error_pct(target: f64, measured: f64) -> f64 {
    if target.abs() < 1e-12 {
        if measured.abs() < 1e-12 {
            0.0
        } else {
            100.0
        }
    } else {
        ((measured - target) / target).abs() * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_on_uniform_data() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(SimDuration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(50.0).as_micros_f64();
        let p99 = h.percentile(99.0).as_micros_f64();
        assert!((470.0..=530.0).contains(&p50), "p50 {p50}");
        assert!((950.0..=1000.0).contains(&p99), "p99 {p99}");
        assert_eq!(h.max().as_micros_f64(), 1000.0);
        assert_eq!(h.min().as_micros_f64(), 1.0);
    }

    #[test]
    fn histogram_relative_error_bounded() {
        let mut h = LatencyHistogram::new();
        let v = 123_456_789u64; // ns
        h.record(SimDuration::from_nanos(v));
        let got = h.percentile(50.0).as_nanos() as f64;
        assert!((got - v as f64).abs() / v as f64 <= 1.0 / 32.0 + 1e-9);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(99.0), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_micros(10));
        b.record(SimDuration::from_micros(20));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max().as_micros_f64(), 20.0);
    }

    /// Builds a non-canonical histogram the way a legacy snapshot would
    /// look before deserialization normalized it.
    fn short_histogram(len: usize) -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; len],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    #[test]
    fn merge_is_length_safe() {
        // Regression: merge used to zip counts, silently dropping the
        // longer side's tail buckets while still summing total/sum_ns —
        // so a short receiver "lost" every observation past its length
        // and percentiles collapsed onto the max fallback.
        let mut short = short_histogram(SUB_BUCKETS);
        for _ in 0..10 {
            short.record(SimDuration::from_nanos(1));
        }
        let mut full = LatencyHistogram::new();
        for _ in 0..10 {
            full.record(SimDuration::from_millis(1));
        }
        for _ in 0..10 {
            full.record(SimDuration::from_millis(2));
        }
        short.merge(&full);
        assert_eq!(short.count(), 30);
        assert_eq!(short.counts.iter().sum::<u64>(), 30, "no counts dropped");
        let p50 = short.percentile(50.0).as_nanos();
        assert!(
            (900_000..=1_100_000).contains(&p50),
            "p50 {p50}ns must come from the merged 1ms bucket, not the max fallback"
        );
        // Merging the short side into a canonical histogram also works.
        let mut canon = LatencyHistogram::new();
        canon.merge(&short_histogram(SUB_BUCKETS));
        assert_eq!(canon.counts.len(), BUCKETS * SUB_BUCKETS);
    }

    #[test]
    fn deserialize_normalizes_and_rejects_bad_lengths() {
        // A short legacy snapshot zero-pads to the canonical layout.
        let short = "{\"counts\":[0,3],\"total\":3,\"sum_ns\":3,\"max_ns\":1,\"min_ns\":1}";
        let h: LatencyHistogram = serde_json::from_str(short).expect("short counts pad");
        assert_eq!(h.counts.len(), BUCKETS * SUB_BUCKETS);
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(50.0).as_nanos(), 1);

        // An overlong all-zero tail is dropped...
        let mut counts = vec![0u64; BUCKETS * SUB_BUCKETS + 8];
        counts[1] = 2;
        let overlong_zero = format!(
            "{{\"counts\":{counts:?},\"total\":2,\"sum_ns\":2,\"max_ns\":1,\"min_ns\":1}}"
        );
        let h: LatencyHistogram = serde_json::from_str(&overlong_zero).expect("zero tail drops");
        assert_eq!(h.counts.len(), BUCKETS * SUB_BUCKETS);

        // ...but real counts past the canonical layout are rejected.
        counts[BUCKETS * SUB_BUCKETS + 4] = 1;
        let overlong = format!(
            "{{\"counts\":{counts:?},\"total\":3,\"sum_ns\":3,\"max_ns\":1,\"min_ns\":1}}"
        );
        assert!(serde_json::from_str::<LatencyHistogram>(&overlong).is_err());

        // A total that disagrees with the bucket sum is rejected.
        let bad_total = "{\"counts\":[0,3],\"total\":4,\"sum_ns\":3,\"max_ns\":1,\"min_ns\":1}";
        assert!(serde_json::from_str::<LatencyHistogram>(bad_total).is_err());

        // min > max with observations present is rejected.
        let bad_range = "{\"counts\":[0,3],\"total\":3,\"sum_ns\":3,\"max_ns\":1,\"min_ns\":9}";
        assert!(serde_json::from_str::<LatencyHistogram>(bad_range).is_err());
    }

    #[test]
    fn serde_roundtrip_preserves_histogram() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 10, 100, 1_000, 10_000] {
            h.record(SimDuration::from_micros(us));
        }
        let json = serde_json::to_string(&h).expect("serialize");
        let back: LatencyHistogram = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(h, back);
    }

    #[test]
    fn summary_fields_consistent() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(SimDuration::from_micros(5));
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn running_mean_and_variance() {
        let mut r = Running::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            r.push(x);
        }
        assert_eq!(r.count(), 8);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert!((r.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn relative_error_edges() {
        assert_eq!(relative_error_pct(0.0, 0.0), 0.0);
        assert_eq!(relative_error_pct(0.0, 1.0), 100.0);
        assert!((relative_error_pct(2.0, 2.2) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn index_value_monotone() {
        let mut last = 0;
        for ns in [0u64, 1, 31, 32, 33, 63, 64, 100, 1000, 10_000, 1_000_000, 1_000_000_000] {
            let idx = LatencyHistogram::index(ns);
            assert!(idx >= last || ns < 32, "index must not decrease");
            last = idx;
            let v = LatencyHistogram::value_of(idx);
            assert!(v <= ns, "bucket lower bound {v} must be <= {ns}");
        }
    }
}
