//! Analytic distributions used across the simulator.
//!
//! Workload generators need inter-arrival and key-popularity distributions
//! (exponential for open-loop Poisson traffic, Zipf for cache-skewed key
//! spaces); device models need service-time distributions (log-normal);
//! profilers and generators need empirical discrete distributions sampled by
//! weight. Everything samples from a [`SimRng`](crate::rng::SimRng) so runs
//! stay deterministic.

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// A source of `f64` samples.
pub trait Sample {
    /// Draws one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;
}

/// Exponential distribution with the given rate (events per unit).
///
/// # Example
///
/// ```
/// use ditto_sim::dist::{Exponential, Sample};
/// use ditto_sim::rng::SimRng;
/// let d = Exponential::with_mean(2.0);
/// let mut rng = SimRng::seed(1);
/// let x = d.sample(&mut rng);
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential with rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not positive and finite.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0, "rate must be positive");
        Exponential { rate: lambda }
    }

    /// Creates an exponential with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        Exponential::new(1.0 / mean)
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

impl Sample for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Inverse CDF; guard the log against u == 0.
        let u = rng.f64().max(f64::MIN_POSITIVE);
        -u.ln() / self.rate
    }
}

/// Log-normal distribution parameterised by the mean and sigma of the
/// underlying normal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with location `mu` and shape `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal whose *median* is `median` with shape `sigma`.
    pub fn with_median(median: f64, sigma: f64) -> Self {
        assert!(median > 0.0);
        LogNormal::new(median.ln(), sigma)
    }
}

impl Sample for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Box-Muller.
        let u1 = rng.f64().max(f64::MIN_POSITIVE);
        let u2 = rng.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// Zipf distribution over `{0, 1, …, n-1}` with exponent `s`, sampled by
/// inverse CDF over a precomputed table.
///
/// Used for skewed key popularity in the KVS workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf over `n` items with skew `s` (`s = 0` is uniform).
    ///
    /// The CDF is built from compensated (Kahan) partial sums of the
    /// already-normalised terms rather than renormalising one naive sum at
    /// the end: for large `n` the naive construction loses monotonicity in
    /// the flat tail and leaves `cdf[n-1]` short of 1.0, which biases the
    /// last items' mass. The table here is non-decreasing by construction
    /// and its final entry is exactly `1.0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s.is_finite() && s >= 0.0, "skew must be non-negative");
        // Pass 1: the generalised harmonic number, compensated so tiny
        // tail terms are not absorbed by rounding.
        let mut total = 0.0f64;
        let mut comp = 0.0f64;
        for k in 1..=n {
            let term = 1.0 / (k as f64).powf(s);
            let y = term - comp;
            let t = total + y;
            comp = (t - total) - y;
            total = t;
        }
        // Pass 2: compensated partial sums of term/total, clamped to stay
        // monotone and capped at 1.0; the last entry is pinned to exactly
        // 1.0 so no draw of `u` can fall past the table.
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        let mut comp = 0.0f64;
        let mut prev = 0.0f64;
        for k in 1..=n {
            let y = 1.0 / (k as f64).powf(s) / total - comp;
            let t = acc + y;
            comp = (t - acc) - y;
            acc = t;
            prev = acc.max(prev).min(1.0);
            cdf.push(prev);
        }
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Draws an index in `[0, n)`.
    pub fn index(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero items (never true).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// An empirical discrete distribution sampled by weight.
///
/// This is the workhorse of the Ditto generator: instruction-mix sampling,
/// branch-rate-bin sampling and dependency-distance sampling all use it.
///
/// # Example
///
/// ```
/// use ditto_sim::dist::Discrete;
/// use ditto_sim::rng::SimRng;
/// let d = Discrete::new(vec![("a", 1.0), ("b", 3.0)]).unwrap();
/// let mut rng = SimRng::seed(5);
/// let mut b = 0;
/// for _ in 0..1000 {
///     if *d.sample(&mut rng) == "b" { b += 1; }
/// }
/// assert!(b > 600);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discrete<T> {
    items: Vec<T>,
    cdf: Vec<f64>,
}

/// Error returned when constructing a [`Discrete`] from invalid weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidWeightsError;

impl std::fmt::Display for InvalidWeightsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "weights must be non-negative, finite and sum to a positive value")
    }
}

impl std::error::Error for InvalidWeightsError {}

impl<T> Discrete<T> {
    /// Builds a discrete distribution from `(item, weight)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidWeightsError`] if any weight is negative or
    /// non-finite, or if all weights are zero.
    pub fn new(pairs: Vec<(T, f64)>) -> Result<Self, InvalidWeightsError> {
        let mut items = Vec::with_capacity(pairs.len());
        let mut cdf = Vec::with_capacity(pairs.len());
        let mut acc = 0.0;
        for (item, w) in pairs {
            if !w.is_finite() || w < 0.0 {
                return Err(InvalidWeightsError);
            }
            acc += w;
            items.push(item);
            cdf.push(acc);
        }
        if acc <= 0.0 {
            return Err(InvalidWeightsError);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Ok(Discrete { items, cdf })
    }

    /// Draws a reference to one item.
    ///
    /// # Panics
    ///
    /// Never panics for distributions built through [`Discrete::new`].
    pub fn sample(&self, rng: &mut SimRng) -> &T {
        let u = rng.f64();
        let i = match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.items.len() - 1),
        };
        &self.items[i]
    }

    /// The items in insertion order.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the distribution has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(d: &impl Sample, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::seed(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::with_mean(4.0);
        let m = mean_of(&d, 50_000, 1);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
        assert!((d.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lognormal_median_close() {
        let d = LogNormal::with_median(10.0, 0.5);
        let mut rng = SimRng::seed(2);
        let mut v: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = v[10_000];
        assert!((med - 10.0).abs() < 0.5, "median {med}");
    }

    #[test]
    fn zipf_skews_to_head() {
        let z = Zipf::new(100, 1.0);
        let mut rng = SimRng::seed(3);
        let mut head = 0usize;
        for _ in 0..10_000 {
            if z.index(&mut rng) < 10 {
                head += 1;
            }
        }
        // For s=1, n=100, the first 10 items carry ~56% of the mass.
        assert!(head > 4_500, "head draws {head}");
        assert_eq!(z.len(), 100);
    }

    #[test]
    fn zipf_zero_skew_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = SimRng::seed(4);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.index(&mut rng)] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn zipf_cdf_is_pinned_and_monotone_at_one_million_items() {
        // Regression for the renormalise-at-the-end construction: with a
        // million items the naive CDF's final entry drifted below 1.0 and
        // the flat tail was not monotone at f64 resolution. The
        // compensated construction must end *exactly* at 1.0 (bitwise) and
        // never decrease.
        for &s in &[0.0, 0.9, 1.2] {
            let z = Zipf::new(1_000_000, s);
            assert_eq!(
                z.cdf.last().copied(),
                Some(1.0),
                "s={s}: cdf must be pinned to exactly 1.0"
            );
            let mut prev = 0.0;
            for (i, &v) in z.cdf.iter().enumerate() {
                assert!(v >= prev, "s={s}: cdf decreases at {i}: {v} < {prev}");
                assert!(v <= 1.0, "s={s}: cdf exceeds 1.0 at {i}");
                prev = v;
            }
            // First-item mass matches the analytic term (the naive sum
            // used as reference here carries ~n·ε error of its own).
            let h: f64 = (1..=1_000_000).map(|k| 1.0 / (k as f64).powf(s)).sum();
            let want = 1.0 / h;
            assert!((z.cdf[0] - want).abs() < 1e-9 * want.max(1e-6), "s={s}: head mass {}", z.cdf[0]);
        }
    }

    #[test]
    fn zipf_uniform_partial_sums_are_exact_fractions() {
        // At s=0 every term is 1/n, so the k-th partial sum is (k+1)/n —
        // the compensated construction should land on those fractions to
        // within one ulp even for n where k/n is not representable.
        let n = 1_000_000usize;
        let z = Zipf::new(n, 0.0);
        for &k in &[0usize, 1, 999, 499_999, 999_998] {
            let want = (k + 1) as f64 / n as f64;
            let got = z.cdf[k];
            assert!(
                (got - want).abs() <= f64::EPSILON * want.max(1.0),
                "cdf[{k}] = {got}, want {want}"
            );
        }
        assert_eq!(z.cdf[n - 1], 1.0);
    }

    #[test]
    fn discrete_respects_weights() {
        let d = Discrete::new(vec![(0u8, 1.0), (1u8, 0.0), (2u8, 3.0)]).unwrap();
        let mut rng = SimRng::seed(5);
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[*d.sample(&mut rng) as usize] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2);
    }

    #[test]
    fn discrete_rejects_bad_weights() {
        assert!(Discrete::new(vec![("x", -1.0)]).is_err());
        assert!(Discrete::new(vec![("x", f64::NAN)]).is_err());
        assert!(Discrete::new(vec![("x", 0.0)]).is_err());
        assert!(Discrete::<&str>::new(vec![]).is_err());
    }
}
