//! Thread- and network-model analysis — §4.3's skeleton profiler.
//!
//! A [`KernelProbe`] observes each thread's syscall stream and lifecycle.
//! Per-thread call graphs (root → syscall children weighted by frequency
//! order) are compared with tree-edit distance and clustered
//! agglomeratively; clusters are classified short-/long-lived and their
//! trigger points (socket readiness, accept, futex, timer) identified,
//! and the process's network model (blocking vs I/O-multiplexing,
//! thread-per-connection vs worker pool) is inferred.

use std::collections::HashMap;

use ditto_kernel::{KernelProbe, Pid, SyscallRecord, ThreadEvent, Tid};
use ditto_sim::time::SimTime;

use crate::hierarchy::{agglomerative, tree_edit_distance, Tree};

#[derive(Debug, Clone, Default)]
struct ThreadObs {
    label: String,
    syscalls: HashMap<&'static str, u64>,
    spawned_at: Option<SimTime>,
    exited_at: Option<SimTime>,
    blocks: u64,
    dispatches: u64,
}

/// The probe: attach with `Machine::attach_probe`.
#[derive(Debug)]
pub struct ThreadModelAnalyzer {
    pid: Pid,
    threads: HashMap<Tid, ThreadObs>,
}

impl ThreadModelAnalyzer {
    /// Observes threads of `pid`.
    pub fn new(pid: Pid) -> Self {
        ThreadModelAnalyzer { pid, threads: HashMap::new() }
    }

    fn call_tree(obs: &ThreadObs) -> Tree {
        let mut calls: Vec<(&str, u64)> =
            obs.syscalls.iter().map(|(&n, &c)| (n, c)).collect();
        // Order children by dominance so similar threads produce similar
        // ordered trees.
        calls.sort_by_key(|&(n, c)| (std::cmp::Reverse(c), n));
        Tree::node(
            "thread",
            calls.into_iter().map(|(n, _)| Tree::leaf(n)).collect(),
        )
    }

    /// Finalises the analysis at time `end`.
    pub fn finish(&self, end: SimTime) -> ThreadModelProfile {
        let mut tids: Vec<Tid> = self.threads.keys().copied().collect();
        tids.sort();
        let obs: Vec<&ThreadObs> = tids.iter().map(|t| &self.threads[t]).collect();
        let trees: Vec<Tree> = obs.iter().map(|o| Self::call_tree(o)).collect();

        let n = trees.len();
        let mut dist = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                let d = tree_edit_distance(&trees[i], &trees[j]) as f64;
                dist[i][j] = d;
                dist[j][i] = d;
            }
        }
        // Threads within edit distance 2 of each other share a role.
        let ids = if n == 0 { Vec::new() } else { agglomerative(&dist, 2.0) };

        let mut clusters: HashMap<usize, ThreadCluster> = HashMap::new();
        for (k, o) in obs.iter().enumerate() {
            let c = clusters.entry(ids[k]).or_insert_with(|| ThreadCluster {
                threads: 0,
                short_lived: false,
                trigger: Trigger::None,
                syscall_counts: HashMap::new(),
                labels: Vec::new(),
            });
            c.threads += 1;
            for (&name, &cnt) in &o.syscalls {
                *c.syscall_counts.entry(name.to_string()).or_insert(0) += cnt;
            }
            if !c.labels.contains(&o.label) {
                c.labels.push(o.label.clone());
            }
            // Short-lived: exited well before the window end after a brief
            // life, or spawned mid-run (connection-scoped threads are
            // spawned after startup and may live on).
            let spawned_late = o
                .spawned_at
                .is_some_and(|t| t > SimTime::from_nanos(end.as_nanos() / 10));
            c.short_lived = c.short_lived || o.exited_at.is_some() || spawned_late;
        }
        let mut clusters: Vec<ThreadCluster> = clusters.into_values().collect();
        for c in &mut clusters {
            c.trigger = c.infer_trigger();
        }
        clusters.sort_by_key(|c| std::cmp::Reverse(c.threads));

        let network = infer_network_model(&clusters);
        ThreadModelProfile { clusters, network }
    }
}

impl KernelProbe for ThreadModelAnalyzer {
    fn on_syscall(&mut self, rec: &SyscallRecord) {
        if rec.pid != self.pid {
            return;
        }
        let o = self.threads.entry(rec.tid).or_default();
        *o.syscalls.entry(rec.name).or_insert(0) += 1;
        if rec.blocked {
            o.blocks += 1;
        }
    }

    fn on_thread_event(&mut self, time: SimTime, tid: Tid, pid: Pid, label: &str, ev: ThreadEvent) {
        if pid != self.pid {
            return;
        }
        let o = self.threads.entry(tid).or_default();
        if o.label.is_empty() {
            o.label = label.to_string();
        }
        match ev {
            ThreadEvent::Spawned { .. } => o.spawned_at = Some(time),
            ThreadEvent::Exited => o.exited_at = Some(time),
            ThreadEvent::Blocked => o.blocks += 1,
            ThreadEvent::Dispatched { .. } => o.dispatches += 1,
            _ => {}
        }
    }
}

/// What wakes threads of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Trigger {
    /// Socket readiness via epoll.
    EpollReadiness,
    /// Blocking receive on a socket.
    SocketRecv,
    /// Incoming connections.
    Accept,
    /// User-space synchronisation.
    Futex,
    /// Timers.
    Timer,
    /// Nothing observed.
    None,
}

/// One cluster of behaviourally-similar threads.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ThreadCluster {
    /// Threads in the cluster.
    pub threads: usize,
    /// Spawned/retired dynamically rather than at startup.
    pub short_lived: bool,
    /// Dominant wake-up source.
    pub trigger: Trigger,
    /// Aggregate syscall counts.
    pub syscall_counts: HashMap<String, u64>,
    /// Body labels seen (diagnostics only — the real system has no labels).
    pub labels: Vec<String>,
}

impl ThreadCluster {
    fn count(&self, name: &str) -> u64 {
        self.syscall_counts.get(name).copied().unwrap_or(0)
    }

    fn infer_trigger(&self) -> Trigger {
        let candidates = [
            (self.count("epoll_wait"), Trigger::EpollReadiness),
            (self.count("recvmsg"), Trigger::SocketRecv),
            (self.count("accept"), Trigger::Accept),
            (self.count("futex_wait"), Trigger::Futex),
            (self.count("nanosleep"), Trigger::Timer),
        ];
        // epoll dominates recv if both appear (the recv after readiness is
        // the payload, not the trigger).
        if self.count("epoll_wait") > 0 {
            return Trigger::EpollReadiness;
        }
        candidates
            .into_iter()
            .max_by_key(|&(c, _)| c)
            .filter(|&(c, _)| c > 0)
            .map(|(_, t)| t)
            .unwrap_or(Trigger::None)
    }
}

/// Inferred server network model (§4.3.1's taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum InferredNetworkModel {
    /// I/O multiplexing with a worker pool of the given size.
    IoMultiplexing {
        /// Long-lived worker-loop threads.
        workers: usize,
    },
    /// Blocking thread-per-connection.
    ThreadPerConnection,
    /// No server behaviour observed.
    Unknown,
}

fn infer_network_model(clusters: &[ThreadCluster]) -> InferredNetworkModel {
    let epoll_threads: usize = clusters
        .iter()
        .filter(|c| c.trigger == Trigger::EpollReadiness)
        .map(|c| c.threads)
        .sum();
    if epoll_threads > 0 {
        return InferredNetworkModel::IoMultiplexing { workers: epoll_threads };
    }
    let has_dynamic_recv_threads = clusters
        .iter()
        .any(|c| c.trigger == Trigger::SocketRecv && c.short_lived && c.threads > 1);
    let has_acceptor = clusters.iter().any(|c| c.count("accept") > 0);
    if has_acceptor && has_dynamic_recv_threads {
        return InferredNetworkModel::ThreadPerConnection;
    }
    if has_acceptor || clusters.iter().any(|c| c.count("recvmsg") > 0) {
        return InferredNetworkModel::ThreadPerConnection;
    }
    InferredNetworkModel::Unknown
}

/// The finished skeleton profile.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ThreadModelProfile {
    /// Thread clusters, largest first.
    pub clusters: Vec<ThreadCluster>,
    /// Inferred network model.
    pub network: InferredNetworkModel,
}

impl ThreadModelProfile {
    /// Worker threads handling requests (largest request-triggered cluster).
    pub fn worker_threads(&self) -> usize {
        match self.network {
            InferredNetworkModel::IoMultiplexing { workers } => workers,
            InferredNetworkModel::ThreadPerConnection => self
                .clusters
                .iter()
                .filter(|c| c.trigger == Trigger::SocketRecv)
                .map(|c| c.threads)
                .sum(),
            InferredNetworkModel::Unknown => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tid: u32, name: &'static str, blocked: bool) -> SyscallRecord {
        SyscallRecord {
            time: SimTime::ZERO,
            tid: Tid(tid),
            pid: Pid(0),
            name,
            bytes: 0,
            offset: 0,
            blocked,
        }
    }

    #[test]
    fn epoll_workers_clustered_and_classified() {
        let mut a = ThreadModelAnalyzer::new(Pid(0));
        // Four identical epoll workers.
        for tid in 0..4 {
            for _ in 0..100 {
                a.on_syscall(&rec(tid, "epoll_wait", true));
                a.on_syscall(&rec(tid, "recvmsg", false));
                a.on_syscall(&rec(tid, "sendmsg", false));
            }
        }
        // One acceptor.
        for _ in 0..10 {
            a.on_syscall(&rec(9, "accept", true));
        }
        let p = a.finish(SimTime::from_nanos(1_000_000));
        assert_eq!(p.network, InferredNetworkModel::IoMultiplexing { workers: 4 });
        let worker_cluster = p.clusters.iter().find(|c| c.threads == 4).expect("cluster of 4");
        assert_eq!(worker_cluster.trigger, Trigger::EpollReadiness);
        assert_eq!(p.worker_threads(), 4);
    }

    #[test]
    fn thread_per_conn_detected() {
        let mut a = ThreadModelAnalyzer::new(Pid(0));
        a.on_syscall(&rec(0, "accept", true));
        for tid in 1..6 {
            a.on_thread_event(
                SimTime::from_nanos(900_000),
                Tid(tid),
                Pid(0),
                "w",
                ThreadEvent::Spawned { parent: Some(Tid(0)) },
            );
            for _ in 0..50 {
                a.on_syscall(&rec(tid, "recvmsg", true));
                a.on_syscall(&rec(tid, "pread", true));
                a.on_syscall(&rec(tid, "sendmsg", false));
            }
        }
        let p = a.finish(SimTime::from_nanos(1_000_000));
        assert_eq!(p.network, InferredNetworkModel::ThreadPerConnection);
        assert_eq!(p.worker_threads(), 5);
    }

    #[test]
    fn other_pids_ignored() {
        let mut a = ThreadModelAnalyzer::new(Pid(3));
        a.on_syscall(&rec(0, "epoll_wait", true));
        let p = a.finish(SimTime::from_nanos(100));
        assert!(p.clusters.is_empty());
        assert_eq!(p.network, InferredNetworkModel::Unknown);
    }
}
