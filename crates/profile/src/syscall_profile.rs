//! Syscall profiling — the SystemTap equivalent of §4.4.1.
//!
//! Attached as a [`KernelProbe`], it records per-syscall counts, byte
//! arguments and blocking behaviour for one process, and normalises them
//! into per-request rates (requests ≈ messages received by the service).

use std::collections::HashMap;

use ditto_kernel::{KernelProbe, Pid, SyscallRecord};

/// Statistics for one syscall name.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SyscallStats {
    /// Invocations.
    pub count: u64,
    /// Sum of byte arguments.
    pub total_bytes: u64,
    /// Invocations that blocked.
    pub blocked: u64,
    /// Largest `offset + bytes` seen (the accessed file span).
    pub max_extent: u64,
}

impl SyscallStats {
    /// Mean bytes per call.
    pub fn mean_bytes(&self) -> u64 {
        self.total_bytes.checked_div(self.count).unwrap_or(0)
    }

    /// Fraction of calls that blocked.
    pub fn block_rate(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.blocked as f64 / self.count as f64
        }
    }
}

/// The probe. Register with `Machine::attach_probe`.
#[derive(Debug)]
pub struct SyscallProfiler {
    pid: Pid,
    stats: HashMap<&'static str, SyscallStats>,
}

impl SyscallProfiler {
    /// Profiles syscalls of `pid` only.
    pub fn new(pid: Pid) -> Self {
        SyscallProfiler { pid, stats: HashMap::new() }
    }

    /// Finalises into a profile.
    pub fn finish(&self) -> SyscallProfile {
        SyscallProfile {
            stats: self.stats.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
        }
    }
}

impl KernelProbe for SyscallProfiler {
    fn on_syscall(&mut self, rec: &SyscallRecord) {
        if rec.pid != self.pid {
            return;
        }
        let s = self.stats.entry(rec.name).or_default();
        s.count += 1;
        s.total_bytes += rec.bytes;
        s.blocked += u64::from(rec.blocked);
        s.max_extent = s.max_extent.max(rec.offset + rec.bytes);
    }
}

/// Aggregated syscall distribution for one service process.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct SyscallProfile {
    /// Per-name statistics.
    pub stats: HashMap<String, SyscallStats>,
}

impl SyscallProfile {
    /// Stats for one syscall (zeroes if never seen).
    pub fn get(&self, name: &str) -> SyscallStats {
        self.stats.get(name).copied().unwrap_or_default()
    }

    /// Requests served, approximated as messages received on server-side
    /// sockets.
    pub fn requests(&self) -> u64 {
        self.get("recvmsg").count
    }

    /// Mean calls of `name` per request.
    pub fn per_request(&self, name: &str) -> f64 {
        let reqs = self.requests().max(1);
        self.get(name).count as f64 / reqs as f64
    }

    /// Mean `pread`/`read` file bytes per request.
    pub fn file_read_bytes_per_request(&self) -> f64 {
        let reqs = self.requests().max(1) as f64;
        (self.get("pread").total_bytes + self.get("read").total_bytes) as f64 / reqs
    }

    /// Whether the traced process ever used epoll.
    pub fn uses_epoll(&self) -> bool {
        self.get("epoll_wait").count > 0
    }

    /// The observed file span touched by reads (max offset + bytes).
    pub fn file_span(&self) -> u64 {
        self.get("pread").max_extent.max(self.get("read").max_extent)
    }

    /// Fraction of `pread`/`read` calls that blocked (disk-bound signal).
    pub fn read_block_rate(&self) -> f64 {
        let r = self.get("pread");
        let r2 = self.get("read");
        let count = r.count + r2.count;
        if count == 0 {
            0.0
        } else {
            (r.blocked + r2.blocked) as f64 / count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_sim::time::SimTime;
    use ditto_kernel::Tid;

    fn rec(pid: u32, name: &'static str, bytes: u64, blocked: bool) -> SyscallRecord {
        SyscallRecord { time: SimTime::ZERO, tid: Tid(0), pid: Pid(pid), name, bytes, offset: 0, blocked }
    }

    #[test]
    fn filters_by_pid_and_accumulates() {
        let mut p = SyscallProfiler::new(Pid(1));
        p.on_syscall(&rec(1, "recvmsg", 128, false));
        p.on_syscall(&rec(1, "recvmsg", 128, true));
        p.on_syscall(&rec(2, "recvmsg", 128, false)); // other pid
        p.on_syscall(&rec(1, "pread", 4096, true));
        let prof = p.finish();
        assert_eq!(prof.requests(), 2);
        assert_eq!(prof.get("pread").count, 1);
        assert_eq!(prof.get("pread").mean_bytes(), 4096);
        assert!((prof.get("recvmsg").block_rate() - 0.5).abs() < 1e-12);
        assert!((prof.per_request("pread") - 0.5).abs() < 1e-12);
        assert!((prof.file_read_bytes_per_request() - 2048.0).abs() < 1e-9);
        assert!((prof.read_block_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn epoll_detection() {
        let mut p = SyscallProfiler::new(Pid(0));
        assert!(!p.finish().uses_epoll());
        p.on_syscall(&rec(0, "epoll_wait", 0, true));
        assert!(p.finish().uses_epoll());
    }

    #[test]
    fn unknown_names_are_zero() {
        let p = SyscallProfiler::new(Pid(0)).finish();
        assert_eq!(p.get("never").count, 0);
        assert_eq!(p.per_request("never"), 0.0);
    }
}
