//! Clustering utilities: agglomerative clustering and ordered tree-edit
//! distance.
//!
//! §4.3.2 clusters threads by the tree-edit distance between their call
//! graphs using agglomerative clustering ("since the number of clusters is
//! unknown in advance"); §4.4.2 clusters instructions hierarchically by
//! their resource features. Both algorithms live here.

/// Complete-linkage agglomerative clustering over a precomputed distance
/// matrix. Merging stops when the closest pair is farther than
/// `threshold`. Returns a cluster id per item.
///
/// # Panics
///
/// Panics if `dist` is not an `n × n` matrix.
pub fn agglomerative(dist: &[Vec<f64>], threshold: f64) -> Vec<usize> {
    let n = dist.len();
    for row in dist {
        assert_eq!(row.len(), n, "distance matrix must be square");
    }
    // clusters: list of member lists.
    let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    let linkage = |a: &[usize], b: &[usize]| -> f64 {
        let mut worst: f64 = 0.0;
        for &i in a {
            for &j in b {
                worst = worst.max(dist[i][j]);
            }
        }
        worst
    };

    loop {
        if clusters.len() <= 1 {
            break;
        }
        let mut best = (f64::INFINITY, 0usize, 0usize);
        for i in 0..clusters.len() {
            for j in i + 1..clusters.len() {
                let d = linkage(&clusters[i], &clusters[j]);
                if d < best.0 {
                    best = (d, i, j);
                }
            }
        }
        if best.0 > threshold {
            break;
        }
        let merged = clusters.remove(best.2);
        clusters[best.1].extend(merged);
    }

    let mut ids = vec![0usize; n];
    for (cid, members) in clusters.iter().enumerate() {
        for &m in members {
            ids[m] = cid;
        }
    }
    ids
}

/// A labelled ordered tree for edit-distance comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    /// Node label.
    pub label: String,
    /// Ordered children.
    pub children: Vec<Tree>,
}

impl Tree {
    /// A leaf node.
    pub fn leaf(label: &str) -> Tree {
        Tree { label: label.to_string(), children: Vec::new() }
    }

    /// An internal node.
    pub fn node(label: &str, children: Vec<Tree>) -> Tree {
        Tree { label: label.to_string(), children }
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Tree::size).sum::<usize>()
    }

    /// Post-order traversal of (label, leftmost-leaf-index) — the
    /// Zhang-Shasha preliminaries.
    fn postorder(&self) -> (Vec<String>, Vec<usize>, Vec<usize>) {
        // labels, leftmost leaf per node, keyroots
        fn walk(t: &Tree, labels: &mut Vec<String>, lml: &mut Vec<usize>) -> usize {
            let mut first_leaf = usize::MAX;
            for c in &t.children {
                let l = walk(c, labels, lml);
                if first_leaf == usize::MAX {
                    first_leaf = l;
                }
            }
            labels.push(t.label.clone());
            let own = labels.len() - 1;
            let leftmost = if first_leaf == usize::MAX { own } else { first_leaf };
            lml.push(leftmost);
            leftmost
        }
        let mut labels = Vec::new();
        let mut lml = Vec::new();
        walk(self, &mut labels, &mut lml);
        // keyroots: nodes with no left sibling sharing the leftmost leaf —
        // i.e., the highest node for each distinct leftmost-leaf value.
        let mut keyroots = Vec::new();
        for i in 0..labels.len() {
            if (i + 1..labels.len()).all(|j| lml[j] != lml[i]) {
                keyroots.push(i);
            }
        }
        (labels, lml, keyroots)
    }
}

/// Zhang-Shasha ordered tree-edit distance with unit costs.
pub fn tree_edit_distance(a: &Tree, b: &Tree) -> usize {
    let (la, lmla, kra) = a.postorder();
    let (lb, lmlb, krb) = b.postorder();
    let (m, n) = (la.len(), lb.len());
    let mut td = vec![vec![0usize; n]; m];

    for &i in &kra {
        for &j in &krb {
            // forest distance for subtrees rooted at i, j
            let (li, lj) = (lmla[i], lmlb[j]);
            let rows = i - li + 2;
            let cols = j - lj + 2;
            let mut fd = vec![vec![0usize; cols]; rows];
            for r in 1..rows {
                fd[r][0] = fd[r - 1][0] + 1;
            }
            for c in 1..cols {
                fd[0][c] = fd[0][c - 1] + 1;
            }
            for r in 1..rows {
                for c in 1..cols {
                    let (ai, bj) = (li + r - 1, lj + c - 1);
                    if lmla[ai] == li && lmlb[bj] == lj {
                        let rename = usize::from(la[ai] != lb[bj]);
                        fd[r][c] = (fd[r - 1][c] + 1)
                            .min(fd[r][c - 1] + 1)
                            .min(fd[r - 1][c - 1] + rename);
                        td[ai][bj] = fd[r][c];
                    } else {
                        let (ra, ca) = (lmla[ai] - li, lmlb[bj] - lj);
                        fd[r][c] = (fd[r - 1][c] + 1)
                            .min(fd[r][c - 1] + 1)
                            .min(fd[ra][ca] + td[ai][bj]);
                    }
                }
            }
        }
    }
    td[m - 1][n - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_trees_distance_zero() {
        let t = Tree::node("a", vec![Tree::leaf("b"), Tree::leaf("c")]);
        assert_eq!(tree_edit_distance(&t, &t.clone()), 0);
    }

    #[test]
    fn single_rename_costs_one() {
        let a = Tree::node("a", vec![Tree::leaf("b")]);
        let b = Tree::node("a", vec![Tree::leaf("x")]);
        assert_eq!(tree_edit_distance(&a, &b), 1);
    }

    #[test]
    fn insertion_costs_one() {
        let a = Tree::node("a", vec![Tree::leaf("b")]);
        let b = Tree::node("a", vec![Tree::leaf("b"), Tree::leaf("c")]);
        assert_eq!(tree_edit_distance(&a, &b), 1);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Tree::node("root", vec![Tree::node("x", vec![Tree::leaf("y")]), Tree::leaf("z")]);
        let b = Tree::node("root", vec![Tree::leaf("q")]);
        assert_eq!(tree_edit_distance(&a, &b), tree_edit_distance(&b, &a));
    }

    #[test]
    fn leaf_vs_deep_tree() {
        let a = Tree::leaf("a");
        let b = Tree::node("a", vec![Tree::node("b", vec![Tree::leaf("c")])]);
        assert_eq!(tree_edit_distance(&a, &b), 2);
    }

    #[test]
    fn agglomerative_groups_close_items() {
        // Items 0,1 close; 2,3 close; the pairs far apart.
        let d = vec![
            vec![0.0, 0.1, 5.0, 5.0],
            vec![0.1, 0.0, 5.0, 5.0],
            vec![5.0, 5.0, 0.0, 0.2],
            vec![5.0, 5.0, 0.2, 0.0],
        ];
        let ids = agglomerative(&d, 1.0);
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[2], ids[3]);
        assert_ne!(ids[0], ids[2]);
    }

    #[test]
    fn agglomerative_threshold_zero_keeps_singletons() {
        let d = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let ids = agglomerative(&d, 0.5);
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn agglomerative_huge_threshold_merges_all() {
        let d = vec![
            vec![0.0, 2.0, 9.0],
            vec![2.0, 0.0, 4.0],
            vec![9.0, 4.0, 0.0],
        ];
        let ids = agglomerative(&d, 100.0);
        assert!(ids.iter().all(|&i| i == ids[0]));
    }
}
