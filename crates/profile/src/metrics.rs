//! The measured metric set of Figures 5, 7, 8 and 10, with windowed
//! collection helpers — the `perf stat` of this reproduction.

use ditto_hw::counters::{PerfCounters, TopDown};
use ditto_kernel::{Cluster, NodeId, Pid};
use ditto_sim::stats::relative_error_pct;
use ditto_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// The per-service metrics the paper plots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSet {
    /// Instructions per cycle.
    pub ipc: f64,
    /// Conditional-branch misprediction rate.
    pub branch_miss_rate: f64,
    /// L1 instruction miss rate.
    pub l1i_miss_rate: f64,
    /// L1 data miss rate.
    pub l1d_miss_rate: f64,
    /// L2 miss rate.
    pub l2_miss_rate: f64,
    /// LLC miss rate.
    pub llc_miss_rate: f64,
    /// Network bandwidth in bytes/s (tx).
    pub net_bandwidth: f64,
    /// Disk bandwidth in bytes/s.
    pub disk_bandwidth: f64,
    /// Top-down cycle breakdown.
    pub topdown: TopDown,
    /// Raw counter deltas.
    pub counters: PerfCounters,
}

impl MetricSet {
    /// An all-zero metric set — a placeholder before any measurement.
    pub fn zero() -> MetricSet {
        MetricSet {
            ipc: 0.0,
            branch_miss_rate: 0.0,
            l1i_miss_rate: 0.0,
            l1d_miss_rate: 0.0,
            l2_miss_rate: 0.0,
            llc_miss_rate: 0.0,
            net_bandwidth: 0.0,
            disk_bandwidth: 0.0,
            topdown: TopDown::default(),
            counters: PerfCounters::new(),
        }
    }

    /// Opens a measurement window on `node`: zeroes counters and device
    /// statistics.
    pub fn begin(cluster: &mut Cluster, node: NodeId) {
        cluster.machine_mut(node).reset_counters();
    }

    /// Closes the window after `window` and reads all metrics.
    pub fn end(cluster: &Cluster, node: NodeId, window: SimDuration) -> MetricSet {
        let m = cluster.machine(node);
        let c = m.counters();
        MetricSet {
            ipc: c.ipc(),
            branch_miss_rate: c.branch_miss_rate(),
            l1i_miss_rate: c.l1i_miss_rate(),
            l1d_miss_rate: c.l1d_miss_rate(),
            l2_miss_rate: c.l2_miss_rate(),
            llc_miss_rate: c.llc_miss_rate(),
            net_bandwidth: m.nic.stats().bandwidth_over(window),
            disk_bandwidth: m.disk.stats().bandwidth_over(window),
            topdown: c.topdown(),
            counters: c,
        }
    }

    /// Closes the window reading only one process's counters (the
    /// `perf -p` view) — machine devices are still read machine-wide.
    /// Used when co-located stressors would pollute machine counters
    /// (Figure 10).
    pub fn end_for_pid(cluster: &Cluster, node: NodeId, pid: Pid, window: SimDuration) -> MetricSet {
        let m = cluster.machine(node);
        let c = m.process_counters(pid);
        MetricSet {
            ipc: c.ipc(),
            branch_miss_rate: c.branch_miss_rate(),
            l1i_miss_rate: c.l1i_miss_rate(),
            l1d_miss_rate: c.l1d_miss_rate(),
            l2_miss_rate: c.l2_miss_rate(),
            llc_miss_rate: c.llc_miss_rate(),
            net_bandwidth: m.nic.stats().bandwidth_over(window),
            disk_bandwidth: m.disk.stats().bandwidth_over(window),
            topdown: c.topdown(),
            counters: c,
        }
    }

    /// The seven headline metrics as `(name, value)` pairs (Figure 5's
    /// radar axes, plus disk bandwidth).
    pub fn named(&self) -> [(&'static str, f64); 8] {
        [
            ("IPC", self.ipc),
            ("Branch", self.branch_miss_rate),
            ("L1i", self.l1i_miss_rate),
            ("L1d", self.l1d_miss_rate),
            ("L2", self.l2_miss_rate),
            ("LLC", self.llc_miss_rate),
            ("NetBW", self.net_bandwidth),
            ("DiskBW", self.disk_bandwidth),
        ]
    }

    /// Relative errors (%) of `synthetic` against `self` per metric.
    ///
    /// Miss rates below 1% are compared in absolute percentage points
    /// instead: the relative error of `0.1% vs 0.2%` is meaningless noise,
    /// while the 0.1 pp difference is the honest statement.
    pub fn errors_vs(&self, synthetic: &MetricSet) -> Vec<(&'static str, f64)> {
        self.named()
            .iter()
            .zip(synthetic.named().iter())
            .map(|(&(name, a), &(_, s))| {
                let is_rate = !matches!(name, "IPC" | "NetBW" | "DiskBW");
                if is_rate && a < 0.01 && s < 0.01 {
                    (name, (a - s).abs() * 100.0)
                } else {
                    (name, relative_error_pct(a, s))
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_hw::platform::PlatformSpec;

    #[test]
    fn window_resets_and_reads() {
        let mut c = Cluster::single(PlatformSpec::c(), 3);
        MetricSet::begin(&mut c, NodeId(0));
        let m = MetricSet::end(&c, NodeId(0), SimDuration::from_secs(1));
        assert_eq!(m.counters.instructions, 0);
        assert_eq!(m.ipc, 0.0);
        assert_eq!(m.net_bandwidth, 0.0);
    }

    #[test]
    fn errors_vs_self_are_zero() {
        let c = Cluster::single(PlatformSpec::c(), 3);
        let m = MetricSet::end(&c, NodeId(0), SimDuration::from_secs(1));
        for (_, e) in m.errors_vs(&m) {
            assert_eq!(e, 0.0);
        }
    }
}
