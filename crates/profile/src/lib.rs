//! The profiling substrate: simulated equivalents of SystemTap, Intel
//! SDE, Valgrind and perf (§4.3, §4.4, §5).
//!
//! - [`syscall_profile`] — syscall counts/arguments/blocking (SystemTap),
//! - [`instr_profile`] — instruction mix, branch taken/transition rates,
//!   dependency distances, shared/chased access fractions (Intel SDE),
//! - [`stackdist`] — reuse-distance hit curves `H(2^i)` (Valgrind),
//! - [`thread_model`] — thread clustering via tree-edit distance +
//!   agglomerative clustering, network-model inference (§4.3),
//! - [`hierarchy`] — the clustering algorithms themselves,
//! - [`metrics`] — windowed hardware counters (perf/VTune),
//! - [`profile`] — orchestration into one [`AppProfile`].

pub mod hierarchy;
pub mod instr_profile;
pub mod metrics;
pub mod profile;
pub mod stackdist;
pub mod syscall_profile;
pub mod thread_model;

pub use instr_profile::{InstrProfile, InstrProfiler};
pub use metrics::MetricSet;
pub use profile::{AppProfile, Profiler};
pub use stackdist::{HitCurve, StackDistance};
pub use syscall_profile::{SyscallProfile, SyscallProfiler};
pub use thread_model::{InferredNetworkModel, ThreadModelAnalyzer, ThreadModelProfile};
