//! Exact LRU reuse-distance profiling — the Valgrind-cachegrind
//! equivalent (§4.4.4, §4.4.5).
//!
//! One pass over an address stream yields the hit counts `H(2^i)` for
//! *every* power-of-two cache size simultaneously: a fully-associative LRU
//! cache of capacity `C` lines hits an access exactly when its reuse
//! distance (distinct lines touched since the previous access to the same
//! line) is below `C`. The paper profiles per-size with Valgrind and notes
//! associativity contributes only ~1.9% error, which justifies the
//! fully-associative shortcut.
//!
//! Implementation: Olken's algorithm with a Fenwick tree over access
//! timestamps (1 marks the *latest* access of a live line), compacted when
//! the timestamp space fills.

use std::collections::HashMap;
use std::sync::OnceLock;

/// Log2 of the maximum tracked working set in lines (2³⁰ lines = 64 GiB);
/// deeper reuses saturate into the last bin.
const MAX_BINS: usize = 31;

struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick { tree: vec![0; n + 1] }
    }

    fn add(&mut self, mut i: usize, delta: i32) {
        i += 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + i64::from(delta)) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of `[0, i]`.
    fn prefix(&self, mut i: usize) -> u64 {
        i += 1;
        let mut s = 0u64;
        while i > 0 {
            s += u64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Streaming reuse-distance histogram over 64-byte lines.
pub struct StackDistance {
    fen: Fenwick,
    cap: usize,
    last: HashMap<u64, u32>,
    time: usize,
    /// `bins[k]` counts accesses with working-set size in `(2^(k-1), 2^k]`
    /// lines... concretely: reuse distance `d` lands in bin
    /// `ceil(log2(d+1))`, so bin `k` covers `d+1 ∈ (2^(k-1), 2^k]`.
    bins: [u64; MAX_BINS + 1],
    cold: u64,
    total: u64,
}

impl std::fmt::Debug for StackDistance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StackDistance")
            .field("accesses", &self.total)
            .field("distinct_lines", &self.last.len())
            .finish()
    }
}

impl StackDistance {
    /// Creates a profiler with a timestamp window of `2^21` before
    /// compaction.
    pub fn new() -> Self {
        let cap = 1 << 21;
        StackDistance {
            fen: Fenwick::new(cap),
            cap,
            last: HashMap::new(),
            time: 0,
            bins: [0; MAX_BINS + 1],
            cold: 0,
            total: 0,
        }
    }

    fn compact(&mut self) {
        let mut live: Vec<(u64, u32)> = self.last.iter().map(|(&l, &t)| (l, t)).collect();
        live.sort_by_key(|&(_, t)| t);
        self.fen = Fenwick::new(self.cap);
        self.last.clear();
        for (i, (line, _)) in live.into_iter().enumerate() {
            self.last.insert(line, i as u32);
            self.fen.add(i, 1);
        }
        self.time = self.last.len();
    }

    /// Records an access to the 64-byte line containing `addr`.
    pub fn access(&mut self, addr: u64) {
        let line = addr >> 6;
        self.total += 1;
        if self.time >= self.cap {
            self.compact();
        }
        let t = self.time;
        match self.last.insert(line, t as u32) {
            Some(prev) => {
                // Distinct lines accessed strictly after `prev`:
                let after = self.fen.prefix(t.saturating_sub(1)) - self.fen.prefix(prev as usize);
                let d = after; // excludes the line itself
                let bin = (64 - (d + 1).leading_zeros().min(63)) as usize; // ceil(log2(d+1))
                let bin = if (d + 1).is_power_of_two() { bin - 1 } else { bin };
                self.bins[bin.min(MAX_BINS)] += 1;
                self.fen.add(prev as usize, -1);
                self.fen.add(t, 1);
            }
            None => {
                self.cold += 1;
                self.fen.add(t, 1);
            }
        }
        self.time += 1;
    }

    /// Total accesses observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cold (first-touch) accesses.
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// Snapshots the current hit curve.
    pub fn curve(&self) -> HitCurve {
        HitCurve {
            bins: self.bins.to_vec(),
            cold: self.cold,
            total: self.total,
            index: OnceLock::new(),
        }
    }

    /// Finishes into a hit curve.
    pub fn into_curve(self) -> HitCurve {
        self.curve()
    }
}

impl Default for StackDistance {
    fn default() -> Self {
        Self::new()
    }
}

/// Hit counts per power-of-two cache size: the paper's `H(2^i)`.
///
/// `hits` queries are served by a lazily-built index — the bin edges (bin
/// `k` covers caches of exactly `2^k` lines) plus a cumulative prefix of
/// the bin counts — so each lookup is a binary search over the edges
/// instead of a linear rescan of the bins. The index carries no
/// information of its own, so it is excluded from equality and
/// serialization, and `merge` drops it for rebuild on next use.
#[derive(Debug, Clone)]
pub struct HitCurve {
    /// `bins[k]`: accesses whose reuse needs a cache of exactly `2^k` lines.
    bins: Vec<u64>,
    cold: u64,
    total: u64,
    index: OnceLock<HitIndex>,
}

#[derive(Debug, Clone)]
struct HitIndex {
    /// Capacity in lines covered by bin `k` (`2^k`), ascending.
    edges: Vec<u64>,
    /// `cumulative[n]`: total hits across bins `0..n`.
    cumulative: Vec<u64>,
}

impl PartialEq for HitCurve {
    fn eq(&self, other: &Self) -> bool {
        self.bins == other.bins && self.cold == other.cold && self.total == other.total
    }
}

impl Eq for HitCurve {}

impl serde::Serialize for HitCurve {
    fn to_value(&self) -> serde::Value {
        // Field-by-field object identical to the former derived impl, so
        // persisted profiles keep their wire shape.
        serde::Value::Obj(vec![
            (String::from("bins"), serde::Serialize::to_value(&self.bins)),
            (String::from("cold"), serde::Serialize::to_value(&self.cold)),
            (String::from("total"), serde::Serialize::to_value(&self.total)),
        ])
    }
}

impl serde::Deserialize for HitCurve {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        Ok(HitCurve {
            bins: serde::field(v, "bins")?,
            cold: serde::field(v, "cold")?,
            total: serde::field(v, "total")?,
            index: OnceLock::new(),
        })
    }
}

impl HitCurve {
    /// An empty curve.
    pub fn empty() -> HitCurve {
        HitCurve { bins: vec![0; MAX_BINS + 1], cold: 0, total: 0, index: OnceLock::new() }
    }

    /// Merges another curve's counts into this one (used to combine
    /// per-thread profiles).
    pub fn merge(&mut self, other: &HitCurve) {
        if self.bins.len() < other.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.cold += other.cold;
        self.total += other.total;
        self.index.take();
    }

    fn index(&self) -> &HitIndex {
        self.index.get_or_init(|| {
            let mut edges = Vec::with_capacity(self.bins.len());
            let mut cumulative = Vec::with_capacity(self.bins.len() + 1);
            cumulative.push(0);
            let mut acc = 0u64;
            for (k, &b) in self.bins.iter().enumerate() {
                acc += b;
                cumulative.push(acc);
                edges.push(1u64 << k.min(63));
            }
            HitIndex { edges, cumulative }
        })
    }

    /// `H(size_bytes)`: hits in a fully-associative LRU cache of the given
    /// size (power of two, ≥ 64). A non-power-of-two size contributes only
    /// its lowest set bit, matching the historical linear-scan behaviour.
    pub fn hits(&self, size_bytes: u64) -> u64 {
        let lines = size_bytes.max(64) / 64;
        let capacity = 1u64 << lines.trailing_zeros();
        let index = self.index();
        let covered = index.edges.partition_point(|&e| e <= capacity);
        index.cumulative[covered]
    }

    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cold misses (never hits at any size).
    pub fn cold(&self) -> u64 {
        self.cold
    }

    /// The touched footprint in bytes (distinct lines × 64, rounded up).
    pub fn footprint_bytes(&self) -> u64 {
        (self.cold.max(1) * 64).next_power_of_two()
    }

    /// Equation (1): the number of accesses attributed to each working set
    /// of `2^i` bytes — `A_d(64) = H_d(64)`, otherwise
    /// `A_d(2^i) = H_d(2^i) − H_d(2^(i−1))` — up to `max_bytes`. Accesses
    /// with deeper reuse than any tracked size, plus cold misses, are
    /// assigned to the touched footprint (capped at `max_bytes`), so
    /// totals are preserved.
    pub fn accesses_per_working_set(&self, max_bytes: u64) -> Vec<(u64, u64)> {
        let max_bytes = max_bytes.max(64).next_power_of_two();
        let remainder_size = self.footprint_bytes().clamp(64, max_bytes);
        let mut out = Vec::new();
        let mut size = 64u64;
        let mut assigned = 0u64;
        while size <= max_bytes {
            let a = if size == 64 {
                self.hits(64)
            } else {
                self.hits(size) - self.hits(size / 2)
            };
            assigned += a;
            out.push((size, a));
            size *= 2;
        }
        let remainder = self.total - assigned.min(self.total);
        if remainder > 0 {
            if let Some(slot) = out.iter_mut().find(|(s, _)| *s == remainder_size) {
                slot.1 += remainder;
            }
        }
        out.retain(|&(s, a)| a > 0 || s == 64);
        out
    }

    /// Equation (2): dynamic executions per instruction working set of
    /// `2^j` bytes. With 64-byte lines and 4-byte instructions, a line
    /// holds 16 instructions, so each line-granular hit represents 16
    /// executions; the smallest working set absorbs the remainder so the
    /// total matches `16 · H_i(2^N)`.
    pub fn executions_per_working_set(&self, max_bytes: u64) -> Vec<(u64, u64)> {
        let max_bytes = max_bytes.max(64).next_power_of_two();
        let mut sizes = Vec::new();
        let mut size = 128u64;
        let mut acc = Vec::new();
        while size <= max_bytes {
            let e = 16 * (self.hits(size) - self.hits(size / 2));
            acc.push((size, e));
            sizes.push(size);
            size *= 2;
        }
        let assigned: u64 = acc.iter().map(|&(_, e)| e).sum();
        let top = 16 * self.hits(max_bytes);
        let smallest = top.saturating_sub(assigned);
        let mut out = vec![(64u64, smallest)];
        out.extend(acc);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve_of(addrs: &[u64]) -> HitCurve {
        let mut s = StackDistance::new();
        for &a in addrs {
            s.access(a);
        }
        s.into_curve()
    }

    #[test]
    fn repeated_line_hits_smallest_cache() {
        let c = curve_of(&[0, 0, 0, 0]);
        assert_eq!(c.total(), 4);
        assert_eq!(c.cold(), 1);
        assert_eq!(c.hits(64), 3);
    }

    #[test]
    fn two_line_alternation_needs_two_lines() {
        // 0,64,0,64,... distance 1 → hits need ≥2-line cache (128 B).
        let c = curve_of(&[0, 64, 0, 64, 0, 64]);
        assert_eq!(c.hits(64), 0);
        assert_eq!(c.hits(128), 4);
    }

    #[test]
    fn sequential_loop_reuse_equals_working_set() {
        // Loop over 8 lines 4 times: each reuse distance is 7 → needs 8 lines.
        let mut addrs = Vec::new();
        for _ in 0..4 {
            for l in 0..8u64 {
                addrs.push(l * 64);
            }
        }
        let c = curve_of(&addrs);
        assert_eq!(c.hits(7 * 64), 0, "7-line cache thrashes");
        assert_eq!(c.hits(512), 24, "8-line cache captures all reuses");
    }

    #[test]
    #[allow(clippy::same_item_push)]
    fn eq1_partitions_accesses() {
        let mut addrs = Vec::new();
        for _ in 0..10 {
            addrs.push(0); // 64B working set
            for l in 0..16u64 {
                addrs.push(4096 + l * 64); // 1KB working set (16 lines)
            }
        }
        let c = curve_of(&addrs);
        let parts = c.accesses_per_working_set(1 << 20);
        let total: u64 = parts.iter().map(|&(_, a)| a).sum();
        assert_eq!(total, c.total());
        // Every reuse (hot line and loop lines alike) sees 16 distinct
        // other lines in between → distance 16 → the 2KB (32-line) bin.
        let big: u64 = parts.iter().filter(|&&(s, _)| (1024..=4096).contains(&s)).map(|&(_, a)| a).sum();
        assert!(big >= 9 * 17, "loop accesses {big}");
    }

    #[test]
    fn eq2_total_is_16x_hits() {
        let mut addrs = Vec::new();
        for _ in 0..50 {
            for l in 0..4u64 {
                addrs.push(l * 64);
            }
        }
        let c = curve_of(&addrs);
        let top_hits = c.hits(1 << 20);
        let parts = c.executions_per_working_set(1 << 20);
        let total: u64 = parts.iter().map(|&(_, e)| e).sum();
        assert_eq!(total, 16 * top_hits);
    }

    #[test]
    fn compaction_preserves_distances() {
        let mut s = StackDistance::new();
        // Force many compactions with a 3M-access stream over 4 lines.
        for i in 0..3_000_000u64 {
            s.access((i % 4) * 64);
        }
        let c = s.into_curve();
        assert_eq!(c.cold(), 4);
        assert_eq!(c.hits(4 * 64), 3_000_000 - 4);
        assert_eq!(c.hits(2 * 64), 0);
    }

    /// The pre-index implementation of `hits`, kept verbatim as the
    /// equality oracle for the binary-search version.
    fn hits_linear(c: &HitCurve, size_bytes: u64) -> u64 {
        let lines_log2 = (size_bytes.max(64) / 64).trailing_zeros() as usize;
        c.bins.iter().take(lines_log2 + 1).sum()
    }

    #[test]
    fn binary_search_hits_matches_linear_scan() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut sizes: Vec<u64> = (6..=40).map(|s| 1u64 << s).collect();
        sizes.extend([0, 1, 63, 64, 65, 100, 7 * 64, 192, 3 * 1024, (1 << 20) + 64, u64::MAX]);
        for trial in 0..20 {
            let mut c = HitCurve::empty();
            c.bins = (0..MAX_BINS + 1).map(|_| next() % 1_000_000).collect();
            // Leave a sparse tail on some trials to cover zero runs.
            if trial % 3 == 0 {
                for b in c.bins.iter_mut().skip(5) {
                    *b = 0;
                }
            }
            for &s in &sizes {
                assert_eq!(c.hits(s), hits_linear(&c, s), "trial {trial} size {s}");
            }
            // Merging must invalidate the cached index.
            let mut longer = HitCurve::empty();
            longer.bins = (0..MAX_BINS + 1).map(|_| next() % 1_000).collect();
            c.merge(&longer);
            for &s in &sizes {
                assert_eq!(c.hits(s), hits_linear(&c, s), "post-merge trial {trial} size {s}");
            }
        }
    }

    #[test]
    fn serde_round_trip_preserves_curve_and_wire_shape() {
        let mut addrs = Vec::new();
        for _ in 0..4 {
            for l in 0..8u64 {
                addrs.push(l * 64);
            }
        }
        let c = curve_of(&addrs);
        let v = serde::Serialize::to_value(&c);
        match &v {
            serde::Value::Obj(pairs) => {
                let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["bins", "cold", "total"], "wire shape must stay stable");
            }
            other => panic!("expected object, got {other:?}"),
        }
        let back: HitCurve = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.hits(512), c.hits(512));
    }

    #[test]
    fn distinct_streaming_never_hits() {
        let mut s = StackDistance::new();
        for i in 0..10_000u64 {
            s.access(i * 64);
        }
        let c = s.into_curve();
        assert_eq!(c.cold(), 10_000);
        assert_eq!(c.hits(1 << 30), 0);
    }
}
