//! Profiling orchestration: attach everything, run load, collect the
//! [`AppProfile`] that feeds Ditto's generator.

use std::sync::Arc;

use ditto_kernel::{Cluster, NodeId, Pid};
use ditto_sim::time::{SimDuration, SimTime};
use parking_lot::Mutex;

use crate::instr_profile::{InstrProfile, InstrProfiler};
use crate::metrics::MetricSet;
use crate::syscall_profile::{SyscallProfile, SyscallProfiler};
use crate::thread_model::{ThreadModelAnalyzer, ThreadModelProfile};

/// Everything Ditto learns about one service process.
///
/// Serializable: this is the artifact a provider can share publicly —
/// post-processed statistics only, no application logic (§4.1, §7.2).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct AppProfile {
    /// Instruction-stream profile (mix, branches, working sets, deps).
    pub instr: InstrProfile,
    /// Syscall distribution.
    pub syscalls: SyscallProfile,
    /// Thread/network skeleton profile.
    pub threads: ThreadModelProfile,
    /// Hardware metrics measured during profiling (fine-tuning targets).
    pub metrics: MetricSet,
    /// Requests served in the profiling window.
    pub requests: u64,
    /// Profiling window length.
    pub window: SimDuration,
}

impl AppProfile {
    /// Serialises the profile to JSON — the shareable clone recipe.
    ///
    /// # Errors
    ///
    /// Returns the underlying serializer error (should not happen for
    /// well-formed profiles).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Loads a profile from JSON produced by [`AppProfile::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a parse error if the JSON does not match the schema.
    pub fn from_json(json: &str) -> Result<AppProfile, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Mean profiled user instructions per request.
    pub fn instructions_per_request(&self) -> f64 {
        self.instr.instructions as f64 / self.requests.max(1) as f64
    }
}

/// An attached profiling session (SystemTap + SDE + perf, §5).
pub struct Profiler {
    node: NodeId,
    pid: Pid,
    instr: Arc<Mutex<InstrProfiler>>,
    syscalls: Arc<Mutex<SyscallProfiler>>,
    threads: Arc<Mutex<ThreadModelAnalyzer>>,
    started: SimTime,
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("node", &self.node)
            .field("pid", &self.pid)
            .finish()
    }
}

impl Profiler {
    /// Attaches all profilers to `(node, pid)` and opens a counter window.
    pub fn attach(cluster: &mut Cluster, node: NodeId, pid: Pid) -> Profiler {
        let instr = Arc::new(Mutex::new(InstrProfiler::new(true)));
        let syscalls = Arc::new(Mutex::new(SyscallProfiler::new(pid)));
        let threads = Arc::new(Mutex::new(ThreadModelAnalyzer::new(pid)));
        let started = cluster.now();
        {
            let m = cluster.machine_mut(node);
            m.attach_instr_tracer(pid, instr.clone());
            m.attach_probe(syscalls.clone());
            m.attach_probe(threads.clone());
        }
        MetricSet::begin(cluster, node);
        Profiler { node, pid, instr, syscalls, threads, started }
    }

    /// Detaches and assembles the profile.
    pub fn finish(self, cluster: &mut Cluster) -> AppProfile {
        let _span = ditto_obs::selfprof::span("profiling");
        cluster.machine_mut(self.node).detach_instr_tracer(self.pid);
        let now = cluster.now();
        let window = now.saturating_since(self.started);
        let metrics = MetricSet::end(cluster, self.node, window);
        let instr = self.instr.lock().finish();
        let syscalls = self.syscalls.lock().finish();
        let threads = self.threads.lock().finish(now);
        let requests = syscalls.requests();
        AppProfile { instr, syscalls, threads, metrics, requests, window }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_app::apps;
    use ditto_hw::platform::PlatformSpec;
    use ditto_workload::{OpenLoopConfig, Recorder};

    #[test]
    fn profile_memcached_end_to_end() {
        let mut cluster = Cluster::new(vec![PlatformSpec::a(), PlatformSpec::c()], 77);
        let pid = apps::memcached(9000).deploy(&mut cluster, NodeId(0));
        cluster.run_for(SimDuration::from_millis(10));

        let recorder = Recorder::new();
        OpenLoopConfig::new(NodeId(0), 9000, 3_000.0)
            .spawn(&mut cluster, NodeId(1), &recorder)
            .expect("valid open-loop config");
        cluster.run_for(SimDuration::from_millis(50));

        let profiler = Profiler::attach(&mut cluster, NodeId(0), pid);
        cluster.run_for(SimDuration::from_millis(200));
        let profile = profiler.finish(&mut cluster);

        assert!(profile.requests > 200, "requests {}", profile.requests);
        // Instruction budget: the handler runs ~9k user instructions.
        let ipr = profile.instructions_per_request();
        assert!((6_000.0..14_000.0).contains(&ipr), "instructions/request {ipr}");
        // Skeleton: four epoll workers.
        assert_eq!(
            profile.threads.network,
            crate::thread_model::InferredNetworkModel::IoMultiplexing { workers: 4 },
            "{:?}",
            profile.threads
        );
        // Syscalls: one response send per request.
        let sends = profile.syscalls.per_request("sendmsg");
        assert!((0.8..1.2).contains(&sends), "sendmsg/request {sends}");
        // The 64MB value-store working set must appear in the data curve.
        let a = profile.instr.data_curve.accesses_per_working_set(256 * 1024 * 1024);
        let big: u64 = a.iter().filter(|&&(s, _)| s >= 8 * 1024 * 1024).map(|&(_, n)| n).sum();
        assert!(
            big as f64 > profile.instr.data_curve.total() as f64 * 0.1,
            "large working set accesses {big} of {}",
            profile.instr.data_curve.total()
        );
        // Branch sites and rates were observed.
        assert!(profile.instr.static_branches > 10);
        assert!(!profile.instr.branch_rates().is_empty());
        // Shared hash-table lines detected across the 4 workers.
        assert!(profile.instr.shared_fraction > 0.02, "{}", profile.instr.shared_fraction);
        // Counters captured something sensible.
        assert!(profile.metrics.ipc > 0.1 && profile.metrics.ipc < 4.0);
        assert!(profile.metrics.net_bandwidth > 0.0);
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;
    use crate::{InstrProfiler, MetricSet, SyscallProfile};
    use ditto_hw::counters::PerfCounters;

    #[test]
    fn profile_json_roundtrip() {
        let profile = AppProfile {
            instr: InstrProfiler::new(true).finish(),
            syscalls: SyscallProfile::default(),
            threads: crate::thread_model::ThreadModelProfile {
                clusters: Vec::new(),
                network: crate::InferredNetworkModel::ThreadPerConnection,
            },
            metrics: MetricSet {
                ipc: 1.25,
                branch_miss_rate: 0.04,
                l1i_miss_rate: 0.02,
                l1d_miss_rate: 0.09,
                l2_miss_rate: 0.3,
                llc_miss_rate: 0.5,
                net_bandwidth: 1e7,
                disk_bandwidth: 0.0,
                topdown: Default::default(),
                counters: PerfCounters::new(),
            },
            requests: 123,
            window: SimDuration::from_millis(250),
        };
        let json = profile.to_json().expect("serializes");
        assert!(json.contains("\"requests\": 123"));
        let back = AppProfile::from_json(&json).expect("parses");
        assert_eq!(back.requests, 123);
        assert!((back.metrics.ipc - 1.25).abs() < 1e-12);
        assert_eq!(back.threads.network, crate::InferredNetworkModel::ThreadPerConnection);
        assert_eq!(back.instr.instructions, profile.instr.instructions);
        // The artifact carries statistics, never code.
        assert!(!json.contains("instrs"));
        assert!(!json.contains("CodeBlock"));
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(AppProfile::from_json("{not json").is_err());
        assert!(AppProfile::from_json("{}").is_err());
    }
}
