//! The combined instruction-stream profiler — the Intel SDE equivalent.
//!
//! A single [`RetireSink`] pass over a process's retired instructions
//! collects everything §4.4 needs: the dynamic instruction mix (§4.4.2),
//! per-site branch taken/transition rates quantized on the paper's log
//! scale (§4.4.3), data and instruction reuse-distance curves
//! (§4.4.4/§4.4.5), RAW/WAR/WAW register dependency distances (§4.4.6),
//! the shared-data access fraction (coherence cloning), the
//! pointer-chasing fraction (MLP cloning), and `rep` string lengths.

use std::collections::HashMap;

use ditto_hw::core_model::{RetireEvent, RetireSink};
use ditto_hw::isa::InstrClass;
use ditto_sim::quant::{dep_bin, rate_bin, BinHistogram, DEP_BINS, RATE_BINS};

use crate::stackdist::{HitCurve, StackDistance};

const NCLASS: usize = InstrClass::ALL.len();

fn merge_curves<'a>(dists: impl Iterator<Item = &'a StackDistance>) -> HitCurve {
    let mut out = HitCurve::empty();
    for d in dists {
        out.merge(&d.curve());
    }
    out
}

#[derive(Debug, Clone, Default)]
struct BranchSite {
    execs: u64,
    taken: u64,
    transitions: u64,
    last: Option<bool>,
}

/// Per-line ownership for shared-data detection: a line is shared once two
/// different threads have touched it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineOwner {
    One(u64),
    Shared,
}

/// The streaming profiler. Attach via
/// `Machine::attach_instr_tracer(pid, …)`, run load, then call
/// [`InstrProfiler::finish`].
pub struct InstrProfiler {
    class_counts: [u64; NCLASS],
    total: u64,
    user_only: bool,
    kernel_pc_floor: u64,
    rep_bytes_total: u64,
    rep_count: u64,
    branch_sites: HashMap<u64, BranchSite>,
    // Per-thread reuse-distance profiles: threads interleave arbitrarily
    // on the global timeline, but cache locality is (mostly) per core;
    // Valgrind likewise observes one thread at a time.
    data_dist: HashMap<u64, StackDistance>,
    instr_dist: HashMap<u64, StackDistance>,
    last_fetch_line: HashMap<u64, u64>,
    raw: BinHistogram,
    war: BinHistogram,
    waw: BinHistogram,
    last_write: [u64; 32],
    last_read: [u64; 32],
    mem_accesses: u64,
    writes: u64,
    shared_writes: u64,
    chased_loads: u64,
    loads: u64,
    line_owner: HashMap<u64, LineOwner>,
}

impl std::fmt::Debug for InstrProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstrProfiler")
            .field("instructions", &self.total)
            .field("branch_sites", &self.branch_sites.len())
            .finish()
    }
}

impl InstrProfiler {
    /// Creates a profiler. With `user_only`, instructions whose PC is in
    /// the kernel text range are excluded from the mix/branch/dependency
    /// profiles (they are cloned by imitating syscalls instead, §4.4) but
    /// still feed the i-cache curve, which genuinely mixes modes.
    pub fn new(user_only: bool) -> Self {
        InstrProfiler {
            class_counts: [0; NCLASS],
            total: 0,
            user_only,
            kernel_pc_floor: 0xFFFF_8000_0000,
            rep_bytes_total: 0,
            rep_count: 0,
            branch_sites: HashMap::new(),
            data_dist: HashMap::new(),
            instr_dist: HashMap::new(),
            last_fetch_line: HashMap::new(),
            raw: BinHistogram::new(DEP_BINS),
            war: BinHistogram::new(DEP_BINS),
            waw: BinHistogram::new(DEP_BINS),
            last_write: [0; 32],
            last_read: [0; 32],
            mem_accesses: 0,
            writes: 0,
            shared_writes: 0,
            chased_loads: 0,
            loads: 0,
            line_owner: HashMap::new(),
        }
    }

    /// Finalises into an [`InstrProfile`]. Non-consuming so the profiler
    /// can stay attached through an `Arc<Mutex<…>>`.
    pub fn finish(&self) -> InstrProfile {
        let mut branch_rate_hist = vec![vec![0u64; RATE_BINS]; RATE_BINS];
        for site in self.branch_sites.values() {
            if site.execs < 2 {
                continue;
            }
            let taken_rate = site.taken as f64 / site.execs as f64;
            // Use the minority direction, as the paper's 2^-M encoding does.
            let minority = taken_rate.min(1.0 - taken_rate);
            let trans_rate = site.transitions as f64 / (site.execs - 1) as f64;
            branch_rate_hist[rate_bin(minority.max(1e-9))][rate_bin(trans_rate.max(1e-9))] +=
                site.execs;
        }
        InstrProfile {
            class_counts: self.class_counts,
            instructions: self.total,
            rep_bytes_mean: self.rep_bytes_total.checked_div(self.rep_count).unwrap_or(0),
            static_branches: self.branch_sites.len() as u64,
            branch_rate_hist,
            data_curve: merge_curves(self.data_dist.values()),
            instr_curve: merge_curves(self.instr_dist.values()),
            raw: self.raw.clone(),
            war: self.war.clone(),
            waw: self.waw.clone(),
            shared_fraction: if self.writes == 0 {
                0.0
            } else {
                self.shared_writes as f64 / self.writes as f64
            },
            chase_fraction: if self.loads == 0 {
                0.0
            } else {
                self.chased_loads as f64 / self.loads as f64
            },
        }
    }
}

impl RetireSink for InstrProfiler {
    fn retire(&mut self, ev: &RetireEvent<'_>) {
        // Instruction fetch stream (all modes; the i-cache sees both).
        let fetch_line = ev.pc >> 6;
        let last = self.last_fetch_line.entry(ev.thread_key).or_insert(u64::MAX);
        if fetch_line != *last {
            *last = fetch_line;
            self.instr_dist
                .entry(ev.thread_key)
                .or_default()
                .access(ev.pc);
        }

        let kernel = ev.pc >= self.kernel_pc_floor;
        if self.user_only && kernel {
            // Data stream from the kernel (socket buffers, page cache
            // copies) still affects caches but is reproduced via syscall
            // cloning; skip it in the user profile entirely.
            return;
        }

        let t = self.total;
        self.total += 1;
        let instr = ev.instr;
        self.class_counts[instr.class.index()] += 1;

        if instr.class == InstrClass::RepString {
            self.rep_count += 1;
            self.rep_bytes_total += u64::from(instr.imm);
        }

        // Dependencies through registers.
        for src in [instr.src1, instr.src2] {
            if src.is_some() {
                let r = src.0 as usize;
                self.raw.add(dep_bin(t.saturating_sub(self.last_write[r]).max(1)), 1);
                self.last_read[r] = t;
            }
        }
        if instr.dst.is_some() {
            let r = instr.dst.0 as usize;
            self.war.add(dep_bin(t.saturating_sub(self.last_read[r]).max(1)), 1);
            self.waw.add(dep_bin(t.saturating_sub(self.last_write[r]).max(1)), 1);
            self.last_write[r] = t;
        }

        // Data memory stream.
        if let Some(addr) = ev.addr {
            self.mem_accesses += 1;
            self.data_dist.entry(ev.thread_key).or_default().access(addr);
            let line = addr >> 6;
            let shared = match self.line_owner.get(&line) {
                Some(LineOwner::Shared) => true,
                Some(LineOwner::One(owner)) if *owner != ev.thread_key => {
                    self.line_owner.insert(line, LineOwner::Shared);
                    true
                }
                Some(LineOwner::One(_)) => false,
                None => {
                    self.line_owner.insert(line, LineOwner::One(ev.thread_key));
                    false
                }
            };
            if instr.mem.is_some_and(|m| m.write) {
                self.writes += 1;
                if shared {
                    self.shared_writes += 1;
                }
            }
            if instr.class == InstrClass::Load {
                self.loads += 1;
                // Address-dependent loads: the DCFG equivalent marks loads
                // whose address comes from a prior load.
                if instr.mem.is_some_and(|m| m.chased) {
                    self.chased_loads += 1;
                }
            }
        }

        // Branch behaviour per static site.
        if let (InstrClass::CondBranch, Some(taken)) = (instr.class, ev.taken) {
            let site = self.branch_sites.entry(ev.pc).or_default();
            site.execs += 1;
            if taken {
                site.taken += 1;
            }
            if let Some(last) = site.last {
                if last != taken {
                    site.transitions += 1;
                }
            }
            site.last = Some(taken);
        }
    }
}

/// The finished instruction profile — everything the body generator needs.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct InstrProfile {
    /// Dynamic count per [`InstrClass`].
    pub class_counts: [u64; NCLASS],
    /// Total profiled (user) instructions.
    pub instructions: u64,
    /// Mean bytes per `rep` string op.
    pub rep_bytes_mean: u64,
    /// Static conditional-branch sites observed.
    pub static_branches: u64,
    /// `branch_rate_hist[taken_bin][transition_bin]` = dynamic executions,
    /// bins per §4.4.3's `2^-1 … 2^-10` quantization.
    pub branch_rate_hist: Vec<Vec<u64>>,
    /// Data reuse-distance curve (`H_d`).
    pub data_curve: HitCurve,
    /// Instruction reuse-distance curve (`H_i`).
    pub instr_curve: HitCurve,
    /// RAW dependency-distance histogram (11 exponential bins).
    pub raw: BinHistogram,
    /// WAR dependency-distance histogram.
    pub war: BinHistogram,
    /// WAW dependency-distance histogram.
    pub waw: BinHistogram,
    /// Fraction of *writes* that hit lines touched by multiple threads —
    /// the invalidation-producing accesses that matter for coherence
    /// cloning (§4.4.4). Reads of shared lines follow for free.
    pub shared_fraction: f64,
    /// Fraction of loads that are address-dependent on a prior load.
    pub chase_fraction: f64,
}

impl InstrProfile {
    /// The instruction mix as `(class, weight)` pairs, zero-weight classes
    /// omitted.
    pub fn mix(&self) -> Vec<(InstrClass, f64)> {
        let total = self.instructions.max(1) as f64;
        InstrClass::ALL
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.class_counts[i] > 0)
            .map(|(i, &c)| (c, self.class_counts[i] as f64 / total))
            .collect()
    }

    /// The branch-rate distribution as `((taken_rate, transition_rate),
    /// weight)` entries.
    pub fn branch_rates(&self) -> Vec<((f64, f64), f64)> {
        let mut out = Vec::new();
        let mut total = 0u64;
        for row in &self.branch_rate_hist {
            for &c in row {
                total += c;
            }
        }
        if total == 0 {
            return out;
        }
        for (tb, row) in self.branch_rate_hist.iter().enumerate() {
            for (trb, &c) in row.iter().enumerate() {
                if c > 0 {
                    out.push((
                        (
                            ditto_sim::quant::rate_from_bin(tb),
                            ditto_sim::quant::rate_from_bin(trb),
                        ),
                        c as f64 / total as f64,
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ditto_hw::isa::{Instr, MemRef, Reg};

    fn event<'a>(pc: u64, instr: &'a Instr, addr: Option<u64>, taken: Option<bool>, thread: u64) -> RetireEvent<'a> {
        RetireEvent { thread_key: thread, pc, instr, addr, taken }
    }

    #[test]
    fn mix_counts_classes() {
        let mut p = InstrProfiler::new(true);
        let alu = Instr::alu(InstrClass::IntAlu, Reg(4), Reg(5), Reg::NONE);
        let ld = Instr::load(Reg(6), MemRef::read(1, 0));
        for i in 0..10 {
            p.retire(&event(0x1000 + i * 4, &alu, None, None, 0));
        }
        for i in 0..5 {
            p.retire(&event(0x2000 + i * 4, &ld, Some(0x9000), None, 0));
        }
        let prof = p.finish();
        assert_eq!(prof.instructions, 15);
        assert_eq!(prof.class_counts[InstrClass::IntAlu.index()], 10);
        assert_eq!(prof.class_counts[InstrClass::Load.index()], 5);
        let mix = prof.mix();
        assert_eq!(mix.len(), 2);
    }

    #[test]
    fn kernel_instructions_excluded_when_user_only() {
        let mut p = InstrProfiler::new(true);
        let alu = Instr::alu(InstrClass::IntAlu, Reg(4), Reg::NONE, Reg::NONE);
        p.retire(&event(0x1000, &alu, None, None, 0));
        p.retire(&event(0xFFFF_8000_1000, &alu, None, None, 0));
        let prof = p.finish();
        assert_eq!(prof.instructions, 1);
    }

    #[test]
    fn branch_rates_recovered() {
        let mut p = InstrProfiler::new(true);
        let br = Instr::cond_branch(0);
        // Site A: always taken. Site B: alternating (transition rate 1.0 →
        // clamps to the 2^-1 bin).
        for i in 0..1000 {
            p.retire(&event(0x1000, &br, None, Some(true), 0));
            p.retire(&event(0x2000, &br, None, Some(i % 2 == 0), 0));
        }
        let prof = p.finish();
        assert_eq!(prof.static_branches, 2);
        let rates = prof.branch_rates();
        assert!(!rates.is_empty());
        // The always-taken site has minority rate ~0 → last bin.
        let low_bin_weight: f64 = rates
            .iter()
            .filter(|((t, _), _)| *t <= ditto_sim::quant::rate_from_bin(RATE_BINS - 1) * 1.01)
            .map(|(_, w)| w)
            .sum();
        assert!(low_bin_weight > 0.3, "{rates:?}");
    }

    #[test]
    fn shared_write_fraction_detected_across_threads() {
        let mut p = InstrProfiler::new(true);
        let ld = Instr::load(Reg(6), MemRef::read(1, 0));
        let st = Instr::store(Reg(6), MemRef::write(1, 0));
        p.retire(&event(0x1000, &ld, Some(0x5000), None, 1));
        p.retire(&event(0x1004, &ld, Some(0x5000), None, 2)); // other thread reads
        // Thread 1 writes the now-shared line: a coherence-relevant write.
        p.retire(&event(0x1008, &st, Some(0x5000), None, 1));
        // Private write elsewhere.
        p.retire(&event(0x100C, &st, Some(0x9000), None, 1));
        let prof = p.finish();
        assert!((prof.shared_fraction - 0.5).abs() < 1e-9, "{}", prof.shared_fraction);
    }

    #[test]
    fn chase_fraction_measured() {
        let mut p = InstrProfiler::new(true);
        let mut chased = Instr::load(Reg(6), MemRef::read(1, 0));
        if let Some(m) = &mut chased.mem {
            m.chased = true;
        }
        let plain = Instr::load(Reg(7), MemRef::read(1, 64));
        for i in 0..3 {
            p.retire(&event(0x1000 + i * 4, &chased, Some(64 * i), None, 0));
        }
        p.retire(&event(0x2000, &plain, Some(0x8000), None, 0));
        let prof = p.finish();
        assert!((prof.chase_fraction - 0.75).abs() < 1e-9);
    }

    #[test]
    fn dependency_distances_binned() {
        let mut p = InstrProfiler::new(true);
        // r4 written at t=0, read at t=1 (RAW distance 1) and t=8.
        let w = Instr::alu(InstrClass::IntAlu, Reg(4), Reg::NONE, Reg::NONE);
        let r = Instr::alu(InstrClass::IntAlu, Reg(5), Reg(4), Reg::NONE);
        p.retire(&event(0x1000, &w, None, None, 0));
        p.retire(&event(0x1004, &r, None, None, 0));
        let prof = p.finish();
        assert!(prof.raw.total() > 0);
        assert_eq!(prof.raw.count(dep_bin(1)), 1);
    }

    #[test]
    fn rep_bytes_mean() {
        let mut p = InstrProfiler::new(true);
        let mut rep = Instr::load(Reg(4), MemRef::read(1, 0));
        rep.class = InstrClass::RepString;
        rep.imm = 1000;
        p.retire(&event(0x1000, &rep, Some(0), None, 0));
        rep.imm = 3000;
        p.retire(&event(0x1004, &rep, Some(0), None, 0));
        assert_eq!(p.finish().rep_bytes_mean, 2000);
    }
}
