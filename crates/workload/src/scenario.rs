//! Deterministic traffic scenario library.
//!
//! A [`LoadPlan`] is to traffic what a `FaultPlan` is to failures: a
//! declarative, seed-free schedule built before the run, replayed as a
//! pure function of sim time. It combines named measurement *phases*
//! (each becoming its own recorder window) with one or more traffic
//! *sources* (each a [`HybridLoadConfig`] population with its own
//! [`RateFn`]). Because the plan itself contains no randomness — all
//! draws happen on the client node's seeded stream at run time — two
//! runs of the same (plan, seed) are bit-identical regardless of rayon
//! pool size, PDES worker count, or observability settings.
//!
//! The canned constructors cover the four traffic shapes cloud services
//! are validated against: diurnal waves, flash crowds, regional
//! failover shifts, and slow ramps. Curved segments (the diurnal sine,
//! the flash-crowd decay) are pre-sampled into piecewise-linear
//! breakpoints at plan-construction time, so replay never evaluates a
//! transcendental per request.

use ditto_sim::time::SimDuration;

use crate::hybrid::{HybridLoadConfig, RateFn};

/// One named measurement window within a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadPhase {
    /// Phase label, carried into per-phase summaries and reports.
    pub name: String,
    /// Window length.
    pub duration: SimDuration,
}

/// One traffic source: a modeled user population with a rate shape.
/// Sources in a plan occupy disjoint user-id ranges via `user_base`.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSource {
    /// Source label (e.g. a region).
    pub name: String,
    /// Modeled population size.
    pub users: u64,
    /// Zipf exponent of user activity.
    pub user_skew: f64,
    /// User-id offset keeping this source's ids disjoint from others.
    pub user_base: u64,
    /// Aggregate arrival rate over scenario time.
    pub rate: RateFn,
}

impl LoadSource {
    /// Instantiates this source as a hybrid generator config against
    /// `(server, port)`, with the plan's rate led in by `warmup` so the
    /// opening rate plays while the harness warms up.
    pub fn to_config(
        &self,
        server: ditto_kernel::NodeId,
        port: u16,
        warmup: SimDuration,
    ) -> HybridLoadConfig {
        let mut cfg = HybridLoadConfig::new(server, port, self.users, 1.0);
        cfg.user_skew = self.user_skew;
        cfg.user_base = self.user_base;
        cfg.rate = self.rate.with_lead_in(warmup);
        cfg
    }
}

/// A deterministic traffic scenario: phases to measure, sources to run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPlan {
    /// Scenario name (report label).
    pub name: String,
    /// Measurement phases, played back-to-back after warmup.
    pub phases: Vec<LoadPhase>,
    /// Traffic sources running for the whole scenario.
    pub sources: Vec<LoadSource>,
}

/// Breakpoints per curved segment. 8 points keep the piecewise-linear
/// approximation of a half-sine within ~1% of the true curve, far below
/// the 10% clone-fidelity band.
const CURVE_POINTS: usize = 8;

/// Samples `f` over `[start, start+len]` into `CURVE_POINTS` linear
/// segments, appending to `pts`.
fn sample_curve(
    pts: &mut Vec<(SimDuration, f64)>,
    start: SimDuration,
    len: SimDuration,
    f: impl Fn(f64) -> f64,
) {
    for i in 1..=CURVE_POINTS {
        let frac = i as f64 / CURVE_POINTS as f64;
        pts.push((start + SimDuration::from_secs_f64(len.as_secs_f64() * frac), f(frac)));
    }
}

impl LoadPlan {
    /// Total scenario length (sum of phase windows).
    pub fn total_duration(&self) -> SimDuration {
        self.phases.iter().fold(SimDuration::ZERO, |acc, p| acc + p.duration)
    }

    /// Total modeled user population across sources.
    pub fn modeled_users(&self) -> u64 {
        self.sources.iter().map(|s| s.users).sum()
    }

    /// Peak aggregate offered rate (sum of per-source maxima — sources
    /// peak together in every canned scenario).
    pub fn peak_qps(&self) -> f64 {
        self.sources.iter().map(|s| s.rate.max_rate()).sum()
    }

    /// A diurnal wave: trough hold, half-sine rise, peak hold, half-sine
    /// fall — one day compressed into four equal phases of `phase` each.
    pub fn diurnal(users: u64, trough_qps: f64, peak_qps: f64, phase: SimDuration) -> Self {
        assert!(peak_qps >= trough_qps, "diurnal peak must be >= trough");
        let mut pts = vec![(SimDuration::ZERO, trough_qps)];
        // Trough hold.
        pts.push((phase, trough_qps));
        // Rise: half-sine from trough to peak.
        let swing = peak_qps - trough_qps;
        sample_curve(&mut pts, phase, phase, |f| {
            trough_qps + swing * (0.5 - 0.5 * (std::f64::consts::PI * f).cos())
        });
        // Peak hold.
        pts.push((phase + phase + phase, peak_qps));
        // Fall: half-sine back down.
        let fall_start = phase + phase + phase;
        sample_curve(&mut pts, fall_start, phase, |f| {
            peak_qps - swing * (0.5 - 0.5 * (std::f64::consts::PI * f).cos())
        });
        LoadPlan {
            name: "diurnal".into(),
            phases: ["trough", "rise", "peak", "fall"]
                .into_iter()
                .map(|n| LoadPhase { name: n.into(), duration: phase })
                .collect(),
            sources: vec![LoadSource {
                name: "population".into(),
                users,
                user_skew: 0.99,
                user_base: 0,
                rate: RateFn::from_points(pts),
            }],
        }
    }

    /// A flash crowd: steady base load, an instantaneous spike to
    /// `spike_qps`, an exponential-shaped decay back, then recovery.
    pub fn flash_crowd(users: u64, base_qps: f64, spike_qps: f64, phase: SimDuration) -> Self {
        assert!(spike_qps >= base_qps, "flash crowd must spike above base");
        let mut pts = vec![(SimDuration::ZERO, base_qps)];
        // Steady, then a step up at the phase boundary.
        pts.push((phase, base_qps));
        pts.push((phase, spike_qps));
        // Spike hold.
        pts.push((phase + phase, spike_qps));
        // Decay: exponential-shaped fall (3 time constants over the
        // phase), normalised to land exactly on base so the recovered
        // tail — the clamp past the last breakpoint — holds base rate.
        let swing = spike_qps - base_qps;
        let floor = (-3.0f64).exp();
        sample_curve(&mut pts, phase + phase, phase, |f| {
            base_qps + swing * ((-3.0 * f).exp() - floor) / (1.0 - floor)
        });
        LoadPlan {
            name: "flash_crowd".into(),
            phases: ["steady", "spike", "decay", "recovered"]
                .into_iter()
                .map(|n| LoadPhase { name: n.into(), duration: phase })
                .collect(),
            sources: vec![LoadSource {
                name: "crowd".into(),
                users,
                user_skew: 0.99,
                user_base: 0,
                rate: RateFn::from_points(pts),
            }],
        }
    }

    /// A compressed day with an incident: the diurnal wave (trough hold,
    /// half-sine rise, peak hold, half-sine fall) followed immediately by
    /// a flash crowd (instantaneous step to `spike_qps`, hold,
    /// exponential decay back to trough, recovered hold) — seven equal
    /// phases of `phase` each. This is the capacity-planning scenario: a
    /// configuration must ride out both the sustained peak and the
    /// transient spike to meet its SLO.
    pub fn diurnal_flash(
        users: u64,
        trough_qps: f64,
        peak_qps: f64,
        spike_qps: f64,
        phase: SimDuration,
    ) -> Self {
        assert!(peak_qps >= trough_qps, "diurnal peak must be >= trough");
        assert!(spike_qps >= trough_qps, "flash crowd must spike above trough");
        let p = |n: u64| SimDuration::from_nanos(phase.as_nanos() * n);
        let mut pts = vec![(SimDuration::ZERO, trough_qps)];
        // Trough hold, then half-sine rise to the peak.
        pts.push((p(1), trough_qps));
        let swing = peak_qps - trough_qps;
        sample_curve(&mut pts, p(1), phase, |f| {
            trough_qps + swing * (0.5 - 0.5 * (std::f64::consts::PI * f).cos())
        });
        // Peak hold, then half-sine fall back to the trough.
        pts.push((p(3), peak_qps));
        sample_curve(&mut pts, p(3), phase, |f| {
            peak_qps - swing * (0.5 - 0.5 * (std::f64::consts::PI * f).cos())
        });
        // The incident: step to the spike at the phase boundary, hold.
        pts.push((p(4), trough_qps));
        pts.push((p(4), spike_qps));
        pts.push((p(5), spike_qps));
        // Exponential-shaped decay (3 time constants) normalised to land
        // exactly on the trough, which the clamp past the last
        // breakpoint then holds through the recovered phase.
        let spike_swing = spike_qps - trough_qps;
        let floor = (-3.0f64).exp();
        sample_curve(&mut pts, p(5), phase, |f| {
            trough_qps + spike_swing * ((-3.0 * f).exp() - floor) / (1.0 - floor)
        });
        LoadPlan {
            name: "diurnal_flash".into(),
            phases: ["trough", "rise", "peak", "fall", "spike", "decay", "recovered"]
                .into_iter()
                .map(|n| LoadPhase { name: n.into(), duration: phase })
                .collect(),
            sources: vec![LoadSource {
                name: "population".into(),
                users,
                user_skew: 0.99,
                user_base: 0,
                rate: RateFn::from_points(pts),
            }],
        }
    }

    /// A regional failover: two regions each carrying half of `qps`;
    /// mid-scenario region A drains linearly to zero while region B
    /// absorbs its traffic, holding total offered load constant.
    pub fn failover(users: u64, qps: f64, phase: SimDuration) -> Self {
        let half = qps / 2.0;
        let users_a = users / 2;
        let users_b = users - users_a;
        let shift_start = phase;
        let shift_end = phase + phase;
        let drain = RateFn::from_points(vec![
            (SimDuration::ZERO, half),
            (shift_start, half),
            (shift_end, 0.0),
        ]);
        let absorb = RateFn::from_points(vec![
            (SimDuration::ZERO, half),
            (shift_start, half),
            (shift_end, qps),
        ]);
        LoadPlan {
            name: "failover".into(),
            phases: ["steady", "shift", "failed_over"]
                .into_iter()
                .map(|n| LoadPhase { name: n.into(), duration: phase })
                .collect(),
            sources: vec![
                LoadSource {
                    name: "region_a".into(),
                    users: users_a,
                    user_skew: 0.99,
                    user_base: 0,
                    rate: drain,
                },
                LoadSource {
                    name: "region_b".into(),
                    users: users_b,
                    user_skew: 0.99,
                    // Disjoint id range: region B's user k is id
                    // users_a + k, never colliding with region A.
                    user_base: users_a,
                    rate: absorb,
                },
            ],
        }
    }

    /// A slow ramp: hold at `start_qps`, climb linearly to `end_qps`
    /// over the middle phase, hold at the top.
    pub fn ramp(users: u64, start_qps: f64, end_qps: f64, phase: SimDuration) -> Self {
        let rate = RateFn::from_points(vec![
            (SimDuration::ZERO, start_qps),
            (phase, start_qps),
            (phase + phase, end_qps),
        ]);
        LoadPlan {
            name: "ramp".into(),
            phases: ["low", "climb", "high"]
                .into_iter()
                .map(|n| LoadPhase { name: n.into(), duration: phase })
                .collect(),
            sources: vec![LoadSource {
                name: "population".into(),
                users,
                user_skew: 0.99,
                user_base: 0,
                rate,
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn diurnal_wave_shape() {
        let p = LoadPlan::diurnal(1_000_000, 100.0, 1000.0, ms(100));
        assert_eq!(p.phases.len(), 4);
        assert_eq!(p.total_duration(), ms(400));
        assert_eq!(p.modeled_users(), 1_000_000);
        let r = &p.sources[0].rate;
        assert_eq!(r.rate_at(SimDuration::ZERO), 100.0);
        assert_eq!(r.rate_at(ms(50)), 100.0, "trough holds");
        let mid_rise = r.rate_at(ms(150));
        assert!(mid_rise > 300.0 && mid_rise < 800.0, "rising at mid-rise: {mid_rise}");
        assert_eq!(r.rate_at(ms(250)), 1000.0, "peak holds");
        assert!((p.peak_qps() - 1000.0).abs() < 1e-9);
        let mid_fall = r.rate_at(ms(350));
        assert!(mid_fall > 200.0 && mid_fall < 700.0, "falling at mid-fall: {mid_fall}");
        assert_eq!(r.rate_at(ms(400)), 100.0, "back at trough");
    }

    #[test]
    fn flash_crowd_steps_and_decays() {
        let p = LoadPlan::flash_crowd(500_000, 200.0, 2000.0, ms(100));
        let r = &p.sources[0].rate;
        assert_eq!(r.rate_at(ms(50)), 200.0);
        assert_eq!(r.rate_at(ms(150)), 2000.0, "spike holds");
        let decaying = r.rate_at(ms(250));
        assert!(decaying > 200.0 && decaying < 2000.0, "decaying: {decaying}");
        let recovered = r.rate_at(ms(350));
        assert!(recovered < 200.0 * 1.1, "recovered to ~base: {recovered}");
    }

    #[test]
    fn diurnal_flash_chains_wave_and_incident() {
        let p = LoadPlan::diurnal_flash(500_000, 100.0, 600.0, 1500.0, ms(100));
        assert_eq!(p.phases.len(), 7);
        assert_eq!(p.total_duration(), ms(700));
        let r = &p.sources[0].rate;
        assert_eq!(r.rate_at(ms(50)), 100.0, "trough holds");
        let mid_rise = r.rate_at(ms(150));
        assert!(mid_rise > 150.0 && mid_rise < 550.0, "rising: {mid_rise}");
        assert_eq!(r.rate_at(ms(250)), 600.0, "peak holds");
        let mid_fall = r.rate_at(ms(350));
        assert!(mid_fall > 150.0 && mid_fall < 550.0, "falling: {mid_fall}");
        assert_eq!(r.rate_at(ms(450)), 1500.0, "spike holds");
        let decaying = r.rate_at(ms(550));
        assert!(decaying > 100.0 && decaying < 1500.0, "decaying: {decaying}");
        let recovered = r.rate_at(ms(680));
        assert!(recovered < 110.0, "recovered to trough: {recovered}");
        assert!((p.peak_qps() - 1500.0).abs() < 1e-9, "spike is the scenario peak");
    }

    #[test]
    fn failover_conserves_total_load_and_splits_users() {
        let p = LoadPlan::failover(1_000_001, 1000.0, ms(100));
        assert_eq!(p.sources.len(), 2);
        assert_eq!(p.modeled_users(), 1_000_001);
        let (a, b) = (&p.sources[0], &p.sources[1]);
        assert_eq!(b.user_base, a.users, "id ranges are disjoint");
        for t in [0u64, 50, 100, 150, 200, 250] {
            let total = a.rate.rate_at(ms(t)) + b.rate.rate_at(ms(t));
            assert!((total - 1000.0).abs() < 1e-9, "offered load conserved at {t}ms: {total}");
        }
        assert_eq!(a.rate.rate_at(ms(250)), 0.0, "region A fully drained");
    }

    #[test]
    fn ramp_is_linear_in_the_middle() {
        let p = LoadPlan::ramp(10_000, 100.0, 500.0, ms(100));
        let r = &p.sources[0].rate;
        assert_eq!(r.rate_at(ms(50)), 100.0);
        assert!((r.rate_at(ms(150)) - 300.0).abs() < 1e-9, "midpoint of the climb");
        assert_eq!(r.rate_at(ms(250)), 500.0);
    }

    #[test]
    fn source_configs_lead_in_through_warmup() {
        let p = LoadPlan::ramp(10_000, 100.0, 500.0, ms(100));
        let cfg = p.sources[0].to_config(ditto_kernel::NodeId(0), 9000, ms(40));
        assert_eq!(cfg.users, 10_000);
        assert_eq!(cfg.rate.rate_at(ms(20)), 100.0, "warmup plays the opening rate");
        assert!((cfg.rate.rate_at(ms(190)) - 300.0).abs() < 1e-9, "curve shifted by warmup");
    }
}
