//! Hybrid load generation: a large modeled user population multiplexed
//! over a small connection pool.
//!
//! The per-connection open-loop generator ties one sender/receiver
//! thread pair and one Poisson event stream to every connection, so the
//! modeled user count is capped by thread count rather than by the
//! engine. The hybrid engine decouples them: a handful of sender threads
//! per (client node, traffic source) draw arrivals from *aggregated*
//! non-homogeneous Poisson processes — the superposition of all modeled
//! users' individual processes — and fan the accepted arrivals out over
//! a fixed pool of pre-dialed connections. Per-request cost is O(1) in
//! the population size: one exponential gap, one thinning coin, one Zipf
//! draw for the user identity.
//!
//! Arrival sampling is Lewis–Shedler thinning: candidate events are
//! generated at the rate function's maximum `λ_max` via exponential
//! gaps, and each candidate is accepted with probability
//! `rate(t) / λ_max`. Candidates live on an absolute timeline (each is
//! the previous candidate's time plus the drawn gap), so the cost of
//! processing one arrival never pushes the next one later — the realised
//! rate tracks the offered rate instead of drifting by the per-candidate
//! overhead. Both draws come from the client node's deterministic
//! [`SimRng`] stream in a fixed order, so the request timeline is a pure
//! function of (seed, sim time) — bit-identical across rayon pools, PDES
//! worker counts, and observability on/off.
//!
//! One sender thread serialises its candidates on one simulated CPU,
//! which caps it near 1/(per-candidate kernel cost) arrivals per sim
//! second. Past [`SENDER_TARGET_QPS`] the population is therefore
//! sharded across several senders — like the threads of a real load
//! generator — each owning a disjoint user-id slice, a proportional
//! share of the rate curve, and a private slice of the connection pool,
//! so session affinity (user → connection) still holds exactly.
//!
//! [`SimRng`]: ditto_sim::rng::SimRng

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ditto_kernel::{
    Action, Cluster, Fd, MsgMeta, NodeId, Syscall, ThreadBody, ThreadCtx,
};
use ditto_sim::dist::{Exponential, Sample, Zipf};
use ditto_sim::rng::splitmix64_mix;
use ditto_sim::time::{SimDuration, SimTime};
use ditto_trace::TraceCollector;
use parking_lot::Mutex;

use crate::open_loop::{LoadConfigError, OpenLoopReceiver};
use crate::recorder::Recorder;

/// A piecewise-linear request-rate function of scenario time.
///
/// Breakpoints are `(offset, qps)` pairs with non-decreasing offsets;
/// the rate interpolates linearly between neighbours and clamps to the
/// first/last value outside the covered span. A `RateFn` is plain data —
/// evaluating it draws no randomness — so the scenarios built from it
/// stay pure functions of (seed, sim time).
#[derive(Debug, Clone, PartialEq)]
pub struct RateFn {
    points: Vec<(SimDuration, f64)>,
}

impl RateFn {
    /// A flat rate, forever.
    pub fn constant(qps: f64) -> Self {
        RateFn::from_points(vec![(SimDuration::ZERO, qps)])
    }

    /// Builds a rate function from explicit breakpoints.
    ///
    /// # Panics
    ///
    /// On an empty list, non-finite or negative rates, or offsets that
    /// go backwards — all programming errors in scenario construction.
    pub fn from_points(points: Vec<(SimDuration, f64)>) -> Self {
        assert!(!points.is_empty(), "RateFn needs at least one breakpoint");
        for w in points.windows(2) {
            assert!(w[0].0 <= w[1].0, "RateFn breakpoints must be time-ordered");
        }
        for &(_, r) in &points {
            assert!(r.is_finite() && r >= 0.0, "RateFn rates must be finite and non-negative");
        }
        RateFn { points }
    }

    /// The rate at scenario-time offset `t`.
    pub fn rate_at(&self, t: SimDuration) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        if t >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Linear interpolation inside the covered span.
        for w in pts.windows(2) {
            let ((t0, r0), (t1, r1)) = (w[0], w[1]);
            if t >= t0 && t <= t1 {
                let span = (t1 - t0).as_secs_f64();
                if span <= 0.0 {
                    return r1;
                }
                let frac = (t - t0).as_secs_f64() / span;
                return r0 + (r1 - r0) * frac;
            }
        }
        pts[pts.len() - 1].1
    }

    /// The maximum rate anywhere — `λ_max` of the thinning sampler.
    /// Piecewise-linear, so the max is attained at a breakpoint.
    pub fn max_rate(&self) -> f64 {
        self.points.iter().map(|&(_, r)| r).fold(0.0, f64::max)
    }

    /// Offset of the last breakpoint (the rate is flat past it).
    pub fn end(&self) -> SimDuration {
        self.points[self.points.len() - 1].0
    }

    /// Prepends a hold at the initial rate for `lead`, shifting the rest
    /// of the curve right — how a harness plays the scenario's opening
    /// rate through its warmup before the measurement windows start.
    pub fn with_lead_in(&self, lead: SimDuration) -> RateFn {
        if lead == SimDuration::ZERO {
            return self.clone();
        }
        let mut pts = Vec::with_capacity(self.points.len() + 1);
        pts.push((SimDuration::ZERO, self.points[0].1));
        for &(t, r) in &self.points {
            pts.push((lead + t, r));
        }
        RateFn::from_points(pts)
    }

    /// The same shape scaled by `factor` (e.g. splitting one scenario
    /// rate across client nodes).
    pub fn scaled(&self, factor: f64) -> RateFn {
        assert!(factor.is_finite() && factor >= 0.0, "scale factor must be finite and >= 0");
        RateFn::from_points(self.points.iter().map(|&(t, r)| (t, r * factor)).collect())
    }
}

/// Peak per-sender candidate rate the auto-sharding policy aims for.
///
/// A sender's candidate loop costs a few simulated microseconds of
/// client CPU per arrival (nanosleep + send kernel paths), so one thread
/// saturates in the low hundreds of thousands of candidates per second.
/// 25k per sender keeps each thread's duty cycle low enough that the
/// pool never becomes the bottleneck under study.
pub const SENDER_TARGET_QPS: f64 = 25_000.0;

/// Configuration of a hybrid (population-multiplexed) generator.
///
/// Models `users` clients whose superposed arrivals follow `rate`,
/// multiplexed over `pool` connections. Each accepted arrival draws its
/// originating user from a Zipf(`user_skew`) popularity distribution —
/// matching the key-popularity model the services themselves use — and
/// is stamped with `user_base + user_rank + 1` in [`MsgMeta::user`].
/// Requests of the same user always ride the same pooled connection
/// (session affinity), chosen by a splitmix hash of the user id so hot
/// users spread across the pool.
#[derive(Debug, Clone)]
pub struct HybridLoadConfig {
    /// Server machine.
    pub server: NodeId,
    /// Server port.
    pub port: u16,
    /// Modeled user population size.
    pub users: u64,
    /// Zipf exponent of user activity (0 = uniform).
    pub user_skew: f64,
    /// Offset added to every emitted user id, so multiple sources
    /// (e.g. regions) occupy disjoint id ranges.
    pub user_base: u64,
    /// Multiplexed connection pool size.
    pub pool: usize,
    /// Sender threads to shard the arrival process across. `0` (the
    /// default) auto-sizes from the peak rate: one sender per
    /// [`SENDER_TARGET_QPS`], never more than `pool` or `users`. Each
    /// sender owns a disjoint user-id slice with a proportional share of
    /// the rate curve, so the superposed arrival process is unchanged.
    pub senders: usize,
    /// Aggregate arrival-rate function (scenario time starts when the
    /// pool finishes dialing).
    pub rate: RateFn,
    /// Request payload bytes.
    pub request_bytes: u64,
    /// Optional distributed-trace collector to tag requests with.
    pub collector: Option<TraceCollector>,
    /// Client-side deadline (see [`crate::OpenLoopConfig::timeout`]).
    pub timeout: SimDuration,
}

impl HybridLoadConfig {
    /// A generator modeling `users` clients at a flat aggregate `qps`
    /// over the default 8-connection pool.
    pub fn new(server: NodeId, port: u16, users: u64, qps: f64) -> Self {
        HybridLoadConfig {
            server,
            port,
            users,
            user_skew: 0.99,
            user_base: 0,
            pool: 8,
            senders: 0,
            rate: RateFn::constant(qps),
            request_bytes: 128,
            collector: None,
            timeout: SimDuration::from_secs(1),
        }
    }

    /// Validates the configuration: a non-empty population, a non-empty
    /// pool, and a rate curve that is somewhere positive.
    pub fn validate(&self) -> Result<(), LoadConfigError> {
        if self.pool == 0 {
            return Err(LoadConfigError::NoConnections);
        }
        if self.users == 0 || self.rate.max_rate() <= 0.0 {
            return Err(LoadConfigError::RateTooThin {
                qps: self.rate.max_rate(),
                connections: self.pool,
            });
        }
        Ok(())
    }

    /// The sender-thread count this configuration will actually run:
    /// the explicit `senders` knob, or the auto policy (one sender per
    /// [`SENDER_TARGET_QPS`] of peak rate), clamped to the pool and the
    /// population so every sender owns at least one connection and one
    /// user.
    pub fn sender_count(&self) -> usize {
        let n = if self.senders == 0 {
            (self.rate.max_rate() / SENDER_TARGET_QPS).ceil() as usize
        } else {
            self.senders
        };
        n.clamp(1, self.pool.max(1)).min(self.users.max(1) as usize)
    }

    /// Spawns the sender shards (plus one receiver per pooled
    /// connection) on `client_node`, reporting into `recorder`.
    pub fn spawn(
        &self,
        cluster: &mut Cluster,
        client_node: NodeId,
        recorder: &Recorder,
    ) -> Result<(), LoadConfigError> {
        self.validate()?;
        let n = self.sender_count();
        let pid = cluster.spawn_process(client_node);
        let tags = Arc::new(AtomicU64::new(1));
        let mut user_off = 0u64;
        for i in 0..n {
            // Remainders distribute one-per-shard from the front, so the
            // slices tile the population and the pool exactly.
            let users_i = self.users / n as u64 + u64::from((i as u64) < self.users % n as u64);
            let pool_i = self.pool / n + usize::from(i < self.pool % n);
            let mut cfg = self.clone();
            cfg.users = users_i;
            cfg.user_base = self.user_base + user_off;
            cfg.pool = pool_i;
            // Thinned Poisson processes superpose exactly: each shard
            // carries its population share of the aggregate rate.
            cfg.rate = self.rate.scaled(users_i as f64 / self.users as f64);
            user_off += users_i;
            let body = HybridSender {
                lambda_max: cfg.rate.max_rate(),
                users: Zipf::new(cfg.users as usize, cfg.user_skew),
                state: HybridState::Dial(0),
                setup_done: false,
                anchor: None,
                next_candidate: None,
                fds: vec![None; pool_i],
                pending: (0..pool_i).map(|_| Arc::new(Mutex::new(HashMap::new()))).collect(),
                recorder: recorder.clone(),
                tags: tags.clone(),
                last_sent: None,
                cfg,
            };
            cluster.spawn_thread(client_node, pid, Box::new(body));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HybridState {
    /// Dial pool slot `i`.
    Dial(usize),
    /// Read slot `i`'s connect result and spawn its receiver.
    Spawn(usize),
    /// Receiver for slot `i` spawned; continue setup or start arrivals.
    Next(usize),
    /// Woken at a candidate arrival: thin, and maybe send.
    Fire,
    /// A send was issued; check its result, then sleep the next gap.
    Gap,
}

/// One aggregated-arrival sender shard: all modeled users of its
/// population slice share this thread's candidate stream.
struct HybridSender {
    cfg: HybridLoadConfig,
    lambda_max: f64,
    users: Zipf,
    state: HybridState,
    /// Initial pool dialing finished; `Next` resumes arrivals afterwards.
    setup_done: bool,
    /// Sim time when scenario time zero was anchored (pool ready).
    anchor: Option<SimTime>,
    /// Absolute time of the candidate most recently scheduled, so gaps
    /// chain candidate-to-candidate rather than wake-to-wake.
    next_candidate: Option<SimTime>,
    fds: Vec<Option<Fd>>,
    /// Per-connection outstanding requests, shared with that
    /// connection's receiver.
    pending: Vec<Arc<Mutex<HashMap<u64, SimTime>>>>,
    recorder: Recorder,
    tags: Arc<AtomicU64>,
    /// Most recent send `(tag, slot)`, retired if the send bounces.
    last_sent: Option<(u64, usize)>,
}

impl HybridSender {
    /// Schedules the next candidate arrival and sleeps until it. The
    /// candidate timeline is absolute — previous candidate plus drawn
    /// gap — so per-arrival processing cost shortens the sleep instead
    /// of delaying every later arrival (no rate drift); a sender that
    /// falls behind fires immediately until it catches up.
    fn sleep_gap(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        self.state = HybridState::Fire;
        let gap = Exponential::new(self.lambda_max.max(1e-9)).sample(ctx.rng);
        let next = self.next_candidate.unwrap_or(ctx.now) + SimDuration::from_secs_f64(gap);
        self.next_candidate = Some(next);
        Action::Syscall(Syscall::Nanosleep { dur: next.saturating_since(ctx.now) })
    }

    /// Re-dials `slot` after its connection died, re-entering the normal
    /// `Spawn`/`Next` chain (with `setup_done` set, `Next` resumes
    /// arrivals instead of dialing further slots).
    fn redial(&mut self, slot: usize) -> Action {
        self.fds[slot] = None;
        self.state = HybridState::Spawn(slot);
        Action::Syscall(Syscall::Connect { node: self.cfg.server, port: self.cfg.port })
    }
}

impl ThreadBody for HybridSender {
    fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        match self.state {
            HybridState::Dial(slot) => {
                self.state = HybridState::Spawn(slot);
                Action::Syscall(Syscall::Connect { node: self.cfg.server, port: self.cfg.port })
            }
            HybridState::Spawn(slot) => {
                let Some(fd) = ctx.last.fd() else {
                    // Connection refused (server still booting or slot's
                    // backend crashed): back off and re-dial this slot.
                    self.state = HybridState::Dial(slot);
                    return Action::Syscall(Syscall::Nanosleep {
                        dur: SimDuration::from_millis(10),
                    });
                };
                self.fds[slot] = Some(fd);
                self.state = HybridState::Next(slot);
                Action::Syscall(Syscall::Spawn {
                    body: Box::new(OpenLoopReceiver {
                        fd,
                        pending: self.pending[slot].clone(),
                        recorder: self.recorder.clone(),
                        timeout: self.cfg.timeout,
                    }),
                })
            }
            HybridState::Next(slot) => {
                if !self.setup_done && slot + 1 < self.cfg.pool {
                    self.state = HybridState::Spawn(slot + 1);
                    return Action::Syscall(Syscall::Connect {
                        node: self.cfg.server,
                        port: self.cfg.port,
                    });
                }
                if self.anchor.is_none() {
                    // Scenario time zero: the pool is ready. Harnesses
                    // account for dial time by playing the opening rate
                    // through their warmup (`RateFn::with_lead_in`).
                    self.anchor = Some(ctx.now);
                }
                self.setup_done = true;
                self.sleep_gap(ctx)
            }
            HybridState::Fire => {
                // Thinning: accept this λ_max candidate with probability
                // rate(t)/λ_max. Both draws (the coin here, the user
                // below) happen in fixed order on the node's stream.
                let t = ctx.now.saturating_since(self.anchor.expect("anchored"));
                let p = self.cfg.rate.rate_at(t) / self.lambda_max.max(1e-9);
                if !ctx.rng.chance(p) {
                    return self.sleep_gap(ctx);
                }
                let rank = self.users.index(ctx.rng) as u64;
                let user = self.cfg.user_base + rank + 1;
                // Session affinity with pool balance: same user → same
                // slot, but ranks (and so hot users) spread by hash.
                let slot = (splitmix64_mix(user) % self.cfg.pool as u64) as usize;
                let Some(fd) = self.fds[slot] else {
                    // The slot is mid-redial; this arrival is lost.
                    self.recorder.note_error(ctx.now);
                    return self.sleep_gap(ctx);
                };
                let tag = self.tags.fetch_add(1, Ordering::Relaxed);
                let span = self
                    .cfg
                    .collector
                    .as_ref()
                    .map(|c| c.start_trace())
                    .unwrap_or_default();
                self.pending[slot].lock().insert(tag, ctx.now);
                self.last_sent = Some((tag, slot));
                self.recorder.note_sent(ctx.now);
                self.state = HybridState::Gap;
                Action::Syscall(Syscall::Send {
                    fd,
                    bytes: self.cfg.request_bytes,
                    meta: MsgMeta {
                        tag,
                        trace_id: span.trace_id,
                        span_id: 0,
                        status: 0,
                        user,
                    },
                })
            }
            HybridState::Gap => {
                if ctx.last.is_err() {
                    // The send bounced: retire its tag, count the error,
                    // and re-dial the dead slot. The slot's receiver has
                    // already drained its pending map and exited.
                    let (tag, slot) = self.last_sent.take().expect("send preceded Gap");
                    self.pending[slot].lock().remove(&tag);
                    self.recorder.note_error(ctx.now);
                    return self.redial(slot);
                }
                self.sleep_gap(ctx)
            }
        }
    }

    fn label(&self) -> &str {
        "hybrid-loadgen"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs_f64(s)
    }

    #[test]
    fn rate_fn_interpolates_and_clamps() {
        let r = RateFn::from_points(vec![(secs(1.0), 100.0), (secs(3.0), 300.0)]);
        assert_eq!(r.rate_at(SimDuration::ZERO), 100.0, "clamps before the first point");
        assert_eq!(r.rate_at(secs(1.0)), 100.0);
        assert!((r.rate_at(secs(2.0)) - 200.0).abs() < 1e-9, "midpoint interpolates");
        assert_eq!(r.rate_at(secs(3.0)), 300.0);
        assert_eq!(r.rate_at(secs(9.0)), 300.0, "clamps after the last point");
        assert_eq!(r.max_rate(), 300.0);
        assert_eq!(r.end(), secs(3.0));
    }

    #[test]
    fn rate_fn_lead_in_holds_the_opening_rate() {
        let r = RateFn::from_points(vec![(SimDuration::ZERO, 50.0), (secs(1.0), 150.0)]);
        let led = r.with_lead_in(secs(2.0));
        assert_eq!(led.rate_at(SimDuration::ZERO), 50.0);
        assert_eq!(led.rate_at(secs(1.9)), 50.0, "still holding during the lead-in");
        assert_eq!(led.rate_at(secs(2.0)), 50.0);
        assert!((led.rate_at(secs(2.5)) - 100.0).abs() < 1e-9, "curve resumes, shifted");
        assert_eq!(led.rate_at(secs(3.0)), 150.0);
        assert_eq!(r.with_lead_in(SimDuration::ZERO), r);
    }

    #[test]
    fn rate_fn_scaling_scales_every_point() {
        let r = RateFn::from_points(vec![(SimDuration::ZERO, 100.0), (secs(1.0), 200.0)]);
        let half = r.scaled(0.5);
        assert_eq!(half.rate_at(SimDuration::ZERO), 50.0);
        assert_eq!(half.max_rate(), 100.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rate_fn_rejects_backwards_time() {
        RateFn::from_points(vec![(secs(2.0), 1.0), (secs(1.0), 1.0)]);
    }

    #[test]
    fn sender_auto_policy_shards_by_peak_rate() {
        let mut c = HybridLoadConfig::new(NodeId(0), 80, 1_000_000, 100_000.0);
        c.pool = 64;
        assert_eq!(c.sender_count(), 4, "100k qps → one sender per 25k");
        c.rate = RateFn::constant(2_000.0);
        assert_eq!(c.sender_count(), 1, "light rates stay on a single sender");
        c.senders = 3;
        assert_eq!(c.sender_count(), 3, "explicit knob wins over auto");
        c.senders = 0;
        c.rate = RateFn::constant(10_000_000.0);
        assert_eq!(c.sender_count(), 64, "never more senders than connections");
        c.users = 2;
        assert_eq!(c.sender_count(), 2, "never more senders than users");
    }

    #[test]
    fn hybrid_config_validation() {
        let mut c = HybridLoadConfig::new(NodeId(0), 80, 1_000_000, 1000.0);
        assert_eq!(c.validate(), Ok(()));
        c.pool = 0;
        assert_eq!(c.validate(), Err(LoadConfigError::NoConnections));
        c.pool = 8;
        c.rate = RateFn::constant(0.0);
        assert!(matches!(c.validate(), Err(LoadConfigError::RateTooThin { .. })));
    }
}
