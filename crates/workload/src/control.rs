//! Control-plane trajectory capture.
//!
//! Clone fidelity for a *closed-loop* system is more than matching a
//! steady-state latency histogram: the original and the clone must make
//! the same control decisions at the same times — scale out in the same
//! interval, shed comparable fractions of load, recover from a fault on
//! the same schedule. A [`ControlTrajectory`] records exactly that: one
//! [`ControlSample`] of raw counters per control interval plus every
//! [`ScaleEvent`] the autoscaler emitted. Samples store only integers
//! (counts and nanoseconds), so a trajectory is `Eq`-comparable for the
//! bit-identity suites and mergeable across repeated trials; the derived
//! rates (shed rate, availability, retry amplification) are computed on
//! demand and never stored.
//!
//! [`ControlTrajectory::compare`] implements the agreement criterion the
//! metastability experiment asserts: scale events aligned within one
//! control interval, drop-rate (shed + degraded + lost) curves within an
//! absolute band, peak p99 within a relative band. Drop rate rather than
//! shed rate alone because the *split* between shedding at admission and
//! degrading after a spent retry budget sits on a queue-depth razor's
//! edge — the work the tier refuses is faithfully reproducible, which
//! door refused it is not. Peak rather than per-interval p99 because a
//! healthy interval's p99 over a few hundred requests is order-statistic
//! noise; the storm peak is pinned by the RPC deadline and retry policy.

use ditto_sim::time::{SimDuration, SimTime};
use serde::Serialize;

/// One autoscaler decision (only emitted when the target changed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ScaleEvent {
    /// Control interval whose close triggered the decision.
    pub interval: u32,
    /// Simulated time of the decision, in nanoseconds.
    pub at_ns: u64,
    /// Active replicas per shard before.
    pub from: u32,
    /// Active replicas per shard after.
    pub to: u32,
}

/// One control interval's observations, raw counters only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Default)]
pub struct ControlSample {
    /// Interval index (0-based).
    pub interval: u32,
    /// Simulated time the interval closed, in nanoseconds.
    pub end_ns: u64,
    /// Requests sent by clients during the interval.
    pub sent: u64,
    /// Responses received (excluding rejected) during the interval.
    pub received: u64,
    /// Responses the service degraded.
    pub degraded: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Client-side timeouts.
    pub timeouts: u64,
    /// Client-side errors.
    pub errors: u64,
    /// p99 latency over the interval, in nanoseconds (0 = no samples).
    pub p99_ns: u64,
    /// Admission queue depth when the interval closed.
    pub queue_depth: u64,
    /// Deepest the admission queue has been so far.
    pub depth_peak: u64,
    /// Retry RPCs the router was granted during the interval.
    pub retries: u64,
    /// Requests the router routed during the interval.
    pub routed: u64,
    /// Active replicas per shard while the interval ran.
    pub active_replicas: u32,
}

impl ControlSample {
    /// Completed attempts: everything a client got an answer for.
    pub fn attempts(&self) -> u64 {
        self.received + self.rejected + self.timeouts + self.errors
    }

    /// Fraction of completed attempts shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        let attempts = self.attempts();
        if attempts == 0 {
            return 0.0;
        }
        self.rejected as f64 / attempts as f64
    }

    /// Fraction of completed attempts the tier refused or lost: shed,
    /// degraded, timed out or errored. `1 − availability()`.
    pub fn drop_rate(&self) -> f64 {
        1.0 - self.availability()
    }

    /// Fraction of completed attempts fully served.
    pub fn availability(&self) -> f64 {
        let attempts = self.attempts();
        if attempts == 0 {
            return 1.0;
        }
        self.received.saturating_sub(self.degraded) as f64 / attempts as f64
    }

    /// Downstream send amplification over the interval: `(routed +
    /// retries) / routed`, 1.0 when nothing was routed.
    pub fn amplification(&self) -> f64 {
        if self.routed == 0 {
            return 1.0;
        }
        (self.routed + self.retries) as f64 / self.routed as f64
    }
}

/// How two trajectories (original vs clone) agree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ControlAgreement {
    /// Both sides emitted the same scale transitions (`from → to`, in
    /// order) and each pair of matching events is at most one control
    /// interval apart.
    pub scale_events_aligned: bool,
    /// Largest interval distance between matching scale events.
    pub max_scale_skew: u32,
    /// Largest absolute per-interval drop-rate difference (rates are in
    /// `[0, 1]`, so this is an absolute band, not relative).
    pub drop_rate_max_err: f64,
    /// Relative error between the runs' peak interval p99s, percent
    /// (0 when neither run measured a p99).
    pub p99_peak_err_pct: f64,
}

impl ControlAgreement {
    /// The experiment's acceptance test: events within one interval,
    /// drop-rate curves within `band_pct` percentage points, peak p99
    /// within `band_pct` percent.
    pub fn within(&self, band_pct: f64) -> bool {
        self.scale_events_aligned
            && self.drop_rate_max_err <= band_pct / 100.0
            && self.p99_peak_err_pct <= band_pct
    }
}

/// A metastability episode read off a trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Outage {
    /// First interval with availability below the threshold.
    pub first_bad: u32,
    /// Last interval with availability below the threshold.
    pub last_bad: u32,
    /// Intervals below the threshold in total (the episode may have
    /// gaps).
    pub bad_intervals: u32,
    /// Whether the run ended healthy (the last interval was at or above
    /// the threshold).
    pub recovered: bool,
}

/// The recorded control trajectory of one run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ControlTrajectory {
    /// Control interval length, in nanoseconds.
    pub interval_ns: u64,
    /// One sample per elapsed control interval, in order.
    pub samples: Vec<ControlSample>,
    /// Scale events, in order (only actual changes).
    pub events: Vec<ScaleEvent>,
}

impl ControlTrajectory {
    /// An empty trajectory on the given control interval.
    pub fn new(interval: SimDuration) -> Self {
        ControlTrajectory { interval_ns: interval.as_nanos(), samples: Vec::new(), events: Vec::new() }
    }

    /// Appends one interval's sample.
    pub fn push(&mut self, sample: ControlSample) {
        self.samples.push(sample);
    }

    /// Records a scale decision; `from == to` (no change) is dropped.
    pub fn note_scale(&mut self, interval: u32, at: SimTime, from: u32, to: u32) {
        if from != to {
            self.events.push(ScaleEvent { interval, at_ns: at.as_nanos(), from, to });
        }
    }

    /// Whole-run totals: counters summed, `p99_ns`/`queue_depth` and the
    /// peak taken as maxima, `active_replicas` from the last interval.
    pub fn total(&self) -> ControlSample {
        let mut t = ControlSample::default();
        for s in &self.samples {
            t.sent += s.sent;
            t.received += s.received;
            t.degraded += s.degraded;
            t.rejected += s.rejected;
            t.timeouts += s.timeouts;
            t.errors += s.errors;
            t.retries += s.retries;
            t.routed += s.routed;
            t.p99_ns = t.p99_ns.max(s.p99_ns);
            t.queue_depth = t.queue_depth.max(s.queue_depth);
            t.depth_peak = t.depth_peak.max(s.depth_peak);
            t.end_ns = s.end_ns;
            t.active_replicas = s.active_replicas;
            t.interval = s.interval;
        }
        t
    }

    /// Merges a repeated trial taken over the same interval grid:
    /// counters sum per interval, gauges (`p99_ns`, depths) take the
    /// maximum. Scale events must match exactly — merging is for trials
    /// of the *same* configuration, where a diverging event sequence is
    /// a determinism bug the caller wants to hear about.
    ///
    /// # Panics
    ///
    /// Panics if interval grids or scale-event sequences differ.
    pub fn merge_from(&mut self, other: &ControlTrajectory) {
        assert_eq!(self.interval_ns, other.interval_ns, "mismatched control intervals");
        assert_eq!(self.samples.len(), other.samples.len(), "mismatched interval grids");
        assert_eq!(self.events, other.events, "diverging scale events in a merge");
        for (a, b) in self.samples.iter_mut().zip(&other.samples) {
            a.sent += b.sent;
            a.received += b.received;
            a.degraded += b.degraded;
            a.rejected += b.rejected;
            a.timeouts += b.timeouts;
            a.errors += b.errors;
            a.retries += b.retries;
            a.routed += b.routed;
            a.p99_ns = a.p99_ns.max(b.p99_ns);
            a.queue_depth = a.queue_depth.max(b.queue_depth);
            a.depth_peak = a.depth_peak.max(b.depth_peak);
        }
    }

    /// The metastability episode below `threshold` availability, if any.
    pub fn outage(&self, threshold: f64) -> Option<Outage> {
        let bad: Vec<u32> = self
            .samples
            .iter()
            .filter(|s| s.availability() < threshold)
            .map(|s| s.interval)
            .collect();
        let (&first, &last) = (bad.first()?, bad.last()?);
        let recovered =
            self.samples.last().map(|s| s.availability() >= threshold).unwrap_or(false);
        Some(Outage { first_bad: first, last_bad: last, bad_intervals: bad.len() as u32, recovered })
    }

    /// Peak per-interval retry amplification over the run.
    pub fn peak_amplification(&self) -> f64 {
        self.samples.iter().map(|s| s.amplification()).fold(1.0, f64::max)
    }

    /// Compares against another run's trajectory (original vs clone).
    /// Curves are compared per interval over the shorter of the two
    /// runs; p99 only where both sides measured one.
    pub fn compare(&self, other: &ControlTrajectory) -> ControlAgreement {
        let mut aligned = self.events.len() == other.events.len();
        let mut skew = 0u32;
        for (a, b) in self.events.iter().zip(&other.events) {
            if (a.from, a.to) != (b.from, b.to) {
                aligned = false;
            }
            let d = a.interval.abs_diff(b.interval);
            skew = skew.max(d);
            if d > 1 {
                aligned = false;
            }
        }
        let mut drop_err = 0.0f64;
        for (a, b) in self.samples.iter().zip(&other.samples) {
            drop_err = drop_err.max((a.drop_rate() - b.drop_rate()).abs());
        }
        let (pa, pb) = (self.total().p99_ns, other.total().p99_ns);
        let p99_err = if pa == 0 && pb == 0 {
            0.0
        } else {
            (pa as f64 - pb as f64).abs() / (pa.max(1) as f64) * 100.0
        };
        ControlAgreement {
            scale_events_aligned: aligned,
            max_scale_skew: skew,
            drop_rate_max_err: drop_err,
            p99_peak_err_pct: p99_err,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(interval: u32, received: u64, rejected: u64, p99: u64) -> ControlSample {
        ControlSample {
            interval,
            end_ns: (interval as u64 + 1) * 1_000,
            sent: received + rejected,
            received,
            rejected,
            routed: received,
            p99_ns: p99,
            active_replicas: 2,
            ..Default::default()
        }
    }

    #[test]
    fn rates_derive_from_raw_counts() {
        let mut s = sample(0, 80, 20, 5_000);
        s.timeouts = 0;
        assert!((s.shed_rate() - 0.2).abs() < 1e-12);
        assert!((s.availability() - 0.8).abs() < 1e-12);
        s.retries = 40;
        assert!((s.amplification() - 1.5).abs() < 1e-12);
        let empty = ControlSample::default();
        assert_eq!(empty.shed_rate(), 0.0);
        assert_eq!(empty.availability(), 1.0);
        assert_eq!(empty.amplification(), 1.0);
    }

    #[test]
    fn identical_trajectories_agree_and_are_eq() {
        let mut a = ControlTrajectory::new(SimDuration::from_millis(100));
        a.push(sample(0, 100, 0, 4_000));
        a.note_scale(0, SimTime::from_nanos(1_000), 2, 3);
        a.push(sample(1, 90, 10, 6_000));
        let b = a.clone();
        assert_eq!(a, b, "raw-count trajectories are bit-comparable");
        let agree = a.compare(&b);
        assert!(agree.scale_events_aligned);
        assert_eq!(agree.max_scale_skew, 0);
        assert_eq!(agree.drop_rate_max_err, 0.0);
        assert_eq!(agree.p99_peak_err_pct, 0.0);
        assert!(agree.within(10.0));
    }

    #[test]
    fn scale_events_may_skew_one_interval_but_not_two() {
        let mut a = ControlTrajectory::new(SimDuration::from_millis(100));
        let mut b = ControlTrajectory::new(SimDuration::from_millis(100));
        a.note_scale(3, SimTime::from_nanos(300), 2, 3);
        b.note_scale(4, SimTime::from_nanos(400), 2, 3);
        assert!(a.compare(&b).scale_events_aligned, "one interval of skew is allowed");
        assert_eq!(a.compare(&b).max_scale_skew, 1);
        let mut c = ControlTrajectory::new(SimDuration::from_millis(100));
        c.note_scale(5, SimTime::from_nanos(500), 2, 3);
        assert!(!a.compare(&c).scale_events_aligned, "two intervals is divergence");
        let mut d = ControlTrajectory::new(SimDuration::from_millis(100));
        d.note_scale(3, SimTime::from_nanos(300), 2, 2);
        assert!(d.events.is_empty(), "no-change decisions are not events");
    }

    #[test]
    fn drop_band_is_absolute_and_p99_band_relative() {
        let mut a = ControlTrajectory::new(SimDuration::from_millis(100));
        let mut b = ControlTrajectory::new(SimDuration::from_millis(100));
        a.push(sample(0, 80, 20, 10_000)); // drop 0.20
        b.push(sample(0, 95, 5, 10_800)); // drop 0.05, peak p99 +8%
        let agree = a.compare(&b);
        assert!((agree.drop_rate_max_err - 0.15).abs() < 1e-12);
        assert!((agree.p99_peak_err_pct - 8.0).abs() < 1e-9);
        assert!(!agree.within(10.0), "15-point drop gap breaks the 10% band");
        assert!(agree.within(20.0));
        // Degrades count into the drop curve exactly like sheds: moving
        // 15 points of refused work between the two doors changes nothing.
        let mut c = ControlTrajectory::new(SimDuration::from_millis(100));
        let mut s = sample(0, 95, 5, 10_000);
        s.degraded = 15;
        c.push(s);
        assert!(a.compare(&c).drop_rate_max_err < 1e-12, "shed/degrade split is invisible");
    }

    #[test]
    fn merge_sums_counters_and_keeps_gauge_maxima() {
        let mut a = ControlTrajectory::new(SimDuration::from_millis(100));
        a.push(sample(0, 100, 10, 4_000));
        let mut b = ControlTrajectory::new(SimDuration::from_millis(100));
        b.push(sample(0, 50, 30, 9_000));
        a.merge_from(&b);
        let s = a.samples[0];
        assert_eq!((s.received, s.rejected), (150, 40));
        assert_eq!(s.p99_ns, 9_000, "gauges take the max");
        let t = a.total();
        assert_eq!(t.received, 150);
    }

    #[test]
    #[should_panic(expected = "diverging scale events")]
    fn merge_rejects_diverging_events() {
        let mut a = ControlTrajectory::new(SimDuration::from_millis(100));
        let mut b = ControlTrajectory::new(SimDuration::from_millis(100));
        a.note_scale(1, SimTime::from_nanos(100), 2, 3);
        b.note_scale(2, SimTime::from_nanos(200), 2, 3);
        a.merge_from(&b);
    }

    #[test]
    fn outage_reports_the_episode_and_recovery() {
        let mut t = ControlTrajectory::new(SimDuration::from_millis(100));
        t.push(sample(0, 100, 0, 1_000)); // healthy
        t.push(sample(1, 20, 80, 1_000)); // collapsed
        t.push(sample(2, 30, 70, 1_000)); // collapsed
        t.push(sample(3, 99, 1, 1_000)); // recovered
        let o = t.outage(0.9).expect("episode exists");
        assert_eq!((o.first_bad, o.last_bad, o.bad_intervals), (1, 2, 2));
        assert!(o.recovered);
        assert!(t.outage(0.05).is_none(), "never below 5%");
        let mut never = ControlTrajectory::new(SimDuration::from_millis(100));
        never.push(sample(0, 100, 0, 1_000));
        assert!(never.outage(0.9).is_none());
    }
}
