//! Per-shard + per-tier measurement for scale-out service pools.
//!
//! A [`TierRecorder`] bundles the tier-level (client-facing) [`Recorder`]
//! with one named child recorder per shard. The tier recorder is fed by
//! the load generator as usual; the shard recorders are fed from the
//! router side — each completed router→shard RPC lands in its shard's
//! recorder via [`TierRecorder::observer`], so per-shard latency and
//! failure counts are attributed where the consistent-hash placement sent
//! the work (including bounded-load spills and replica failovers).

use std::sync::Arc;

use ditto_sim::time::{SimDuration, SimTime};

use crate::recorder::{LoadAggregate, LoadSummary, Recorder};

/// Observer signature matching the router's completion hook:
/// `(shard, started, now, ok)`.
pub type TierObserver = Arc<dyn Fn(u32, SimTime, SimTime, bool) + Send + Sync>;

/// A tier-level recorder with per-shard children.
#[derive(Debug, Clone)]
pub struct TierRecorder {
    tier: Recorder,
    shards: Vec<(String, Recorder)>,
}

impl TierRecorder {
    /// Creates a tier recorder with one child per shard name.
    pub fn new(shard_names: &[String]) -> Self {
        TierRecorder {
            tier: Recorder::new(),
            shards: shard_names.iter().map(|n| (n.clone(), Recorder::new())).collect(),
        }
    }

    /// The tier-level (client-facing) recorder the load generator feeds.
    pub fn tier(&self) -> &Recorder {
        &self.tier
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the tier has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// A shard's recorder by index.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &Recorder {
        &self.shards[shard].1
    }

    /// Opens the measurement window on the tier and every shard.
    pub fn start_window(&self, t: SimTime) {
        self.tier.start_window(t);
        for (_, r) in &self.shards {
            r.start_window(t);
        }
    }

    /// Closes the measurement window on the tier and every shard.
    pub fn end_window(&self, t: SimTime) {
        self.tier.end_window(t);
        for (_, r) in &self.shards {
            r.end_window(t);
        }
    }

    /// The completion observer to install on the tier's router: routes
    /// each finished router→shard RPC into its shard's recorder
    /// (successes as latency samples, exhausted failovers as errors).
    pub fn observer(&self) -> TierObserver {
        let shards: Vec<Recorder> = self.shards.iter().map(|(_, r)| r.clone()).collect();
        Arc::new(move |shard, started, now, ok| {
            if let Some(r) = shards.get(shard as usize) {
                if ok {
                    r.note_sent(started);
                    r.record(started, now);
                } else {
                    r.note_error(now);
                }
            }
        })
    }

    /// Per-shard `(name, summary)` rows over `window`.
    pub fn shard_summaries(&self, window: SimDuration) -> Vec<(String, LoadSummary)> {
        self.shards.iter().map(|(n, r)| (n.clone(), r.summary(window))).collect()
    }

    /// The tier-level client-facing summary over `window`.
    pub fn summary(&self, window: SimDuration) -> LoadSummary {
        self.tier.summary(window)
    }

    /// Exact roll-up of all shard recorders (bucket-exact histogram
    /// merge): the server-side view of the tier over `window`.
    pub fn shard_rollup(&self, window: SimDuration) -> LoadAggregate {
        let mut agg = LoadAggregate::new();
        for (_, r) in &self.shards {
            agg.add(&r.summary(window), &r.histogram(), window);
        }
        agg
    }

    /// Bucket-exact roll-up of the shard recorders grouped by a label
    /// per shard (e.g. the hardware platform its replicas run on):
    /// `(label, aggregate)` rows in first-appearance order. The rows
    /// partition [`TierRecorder::shard_rollup`] exactly.
    ///
    /// # Panics
    ///
    /// Panics unless exactly one label per shard is given.
    pub fn grouped_rollup(
        &self,
        groups: &[String],
        window: SimDuration,
    ) -> Vec<(String, LoadAggregate)> {
        assert_eq!(groups.len(), self.shards.len(), "one group label per shard");
        let mut out: Vec<(String, LoadAggregate)> = Vec::new();
        for (label, (_, r)) in groups.iter().zip(&self.shards) {
            let agg = match out.iter_mut().find(|(l, _)| l == label) {
                Some((_, agg)) => agg,
                None => {
                    out.push((label.clone(), LoadAggregate::new()));
                    &mut out.last_mut().expect("just pushed").1
                }
            };
            agg.add(&r.summary(window), &r.histogram(), window);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("shard{i}")).collect()
    }

    #[test]
    fn observer_routes_samples_to_the_right_shard() {
        let tr = TierRecorder::new(&names(3));
        let obs = tr.observer();
        obs(0, SimTime::ZERO, SimTime::from_nanos(100), true);
        obs(2, SimTime::ZERO, SimTime::from_nanos(300), true);
        obs(2, SimTime::ZERO, SimTime::from_nanos(50), false);
        obs(9, SimTime::ZERO, SimTime::from_nanos(1), true); // out of range: dropped
        let w = SimDuration::from_secs(1);
        let rows = tr.shard_summaries(w);
        assert_eq!(rows[0].1.received, 1);
        assert_eq!(rows[1].1.received, 0);
        assert_eq!(rows[2].1.received, 1);
        assert_eq!(rows[2].1.errors, 1);
        assert_eq!(rows[2].0, "shard2");
    }

    #[test]
    fn windows_apply_to_every_shard() {
        let tr = TierRecorder::new(&names(2));
        let obs = tr.observer();
        tr.start_window(SimTime::from_nanos(1000));
        obs(1, SimTime::from_nanos(0), SimTime::from_nanos(500), true); // pre-window
        obs(1, SimTime::from_nanos(1200), SimTime::from_nanos(1500), true);
        tr.end_window(SimTime::from_nanos(2000));
        obs(1, SimTime::from_nanos(1800), SimTime::from_nanos(2500), true); // late
        assert_eq!(tr.shard(1).summary(SimDuration::from_nanos(1000)).received, 1);
    }

    #[test]
    fn rollup_merges_all_shards_exactly() {
        let tr = TierRecorder::new(&names(2));
        let joint = Recorder::new();
        let obs = tr.observer();
        for i in 0..10u64 {
            let sent = SimTime::from_nanos(i * 10);
            let done = SimTime::from_nanos(i * 10 + 100 + i);
            obs((i % 2) as u32, sent, done, true);
            joint.note_sent(sent);
            joint.record(sent, done);
        }
        let w = SimDuration::from_secs(1);
        let roll = tr.shard_rollup(w);
        assert_eq!(roll.histogram(), &joint.histogram(), "bucket-exact merge");
        assert_eq!(roll.summary().received, 10);
        assert_eq!(roll.window(), SimDuration::from_secs(2), "windows sum per shard");
    }

    #[test]
    fn grouped_rollup_partitions_the_full_rollup() {
        let tr = TierRecorder::new(&names(4));
        let obs = tr.observer();
        for i in 0..20u64 {
            let sent = SimTime::from_nanos(i * 10);
            let done = SimTime::from_nanos(i * 10 + 100 + i * 7);
            obs((i % 4) as u32, sent, done, true);
        }
        obs(1, SimTime::ZERO, SimTime::from_nanos(5), false);
        let w = SimDuration::from_secs(1);
        // Shards 0 and 1 on "B", shards 2 and 3 on "A".
        let groups: Vec<String> = ["B", "B", "A", "A"].map(String::from).into();
        let rows = tr.grouped_rollup(&groups, w);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "B", "first-appearance order");
        assert_eq!(rows[1].0, "A");
        assert_eq!(rows[0].1.summary().received, 10);
        assert_eq!(rows[0].1.summary().errors, 1);
        assert_eq!(rows[1].1.summary().received, 10);
        // The group histograms merge back to the full roll-up exactly.
        let full = tr.shard_rollup(w);
        let merged: u64 = rows.iter().map(|(_, a)| a.summary().received).sum();
        assert_eq!(merged, full.summary().received);
        assert_eq!(
            rows[0].1.window() + rows[1].1.window(),
            full.window(),
            "windows sum per shard within each group"
        );
    }

    #[test]
    #[should_panic(expected = "one group label per shard")]
    fn grouped_rollup_rejects_wrong_label_count() {
        let tr = TierRecorder::new(&names(3));
        tr.grouped_rollup(&["A".to_string()], SimDuration::from_secs(1));
    }

    #[test]
    fn tier_recorder_reports_shape() {
        let tr = TierRecorder::new(&names(4));
        assert_eq!(tr.len(), 4);
        assert!(!tr.is_empty());
        assert_eq!(tr.summary(SimDuration::from_secs(1)).received, 0);
    }
}
