//! Load generation and latency measurement (§6.1.2).
//!
//! The simulated equivalents of the paper's load generators:
//!
//! - [`open_loop`] — Poisson arrivals at a target QPS with unbounded
//!   outstanding requests (mutated / tcpkali / open-loop wrk2), used for
//!   Memcached, NGINX and the Social Network;
//! - [`closed_loop`] — one outstanding request per connection with
//!   optional think time (YCSB), used for MongoDB and Redis — this is why
//!   those services' latency plateaus at high load in Figure 5, a shape
//!   the harness reproduces;
//! - [`hybrid`] — a large modeled population multiplexed over a small
//!   connection pool via one aggregated (thinned non-homogeneous
//!   Poisson) arrival process, O(1) per request in population size;
//! - [`scenario`] — the deterministic traffic scenario library
//!   ([`LoadPlan`]): diurnal waves, flash crowds, regional failovers,
//!   slow ramps, each replayed as a pure function of (seed, sim time);
//! - [`recorder`] — shared latency/throughput collection with a
//!   measurement window.

pub mod closed_loop;
pub mod control;
pub mod hybrid;
pub mod open_loop;
pub mod recorder;
pub mod scenario;
pub mod tier;

pub use closed_loop::ClosedLoopConfig;
pub use control::{ControlAgreement, ControlSample, ControlTrajectory, Outage, ScaleEvent};
pub use hybrid::{HybridLoadConfig, RateFn};
pub use open_loop::{LoadConfigError, OpenLoopConfig};
pub use recorder::{LoadAggregate, LoadSummary, Recorder};
pub use scenario::{LoadPhase, LoadPlan, LoadSource};
pub use tier::{TierObserver, TierRecorder};
