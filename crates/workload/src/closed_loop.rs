//! Closed-loop load generation (YCSB-style).
//!
//! Each connection keeps exactly one request outstanding: send, wait for
//! the response, record, think, repeat. Offered load is bounded by
//! `connections / (latency + think)`, which is why closed-loop latency
//! plateaus instead of exploding at saturation (§6.2.1).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ditto_kernel::{
    Action, Cluster, Errno, Fd, MsgMeta, NodeId, Syscall, SysResult, ThreadBody, ThreadCtx,
};
use ditto_sim::time::{SimDuration, SimTime};
use ditto_trace::TraceCollector;

use crate::recorder::Recorder;

/// Configuration of a closed-loop generator.
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    /// Server machine.
    pub server: NodeId,
    /// Server port.
    pub port: u16,
    /// Concurrent connections (each with one outstanding request).
    pub connections: usize,
    /// Request payload bytes.
    pub request_bytes: u64,
    /// Think time between response and next request.
    pub think: SimDuration,
    /// Optional trace collector.
    pub collector: Option<TraceCollector>,
    /// Per-request deadline; a late response abandons the connection and
    /// re-dials rather than matching a stale reply.
    pub timeout: SimDuration,
}

impl ClosedLoopConfig {
    /// A generator with `connections` against `(server, port)`.
    pub fn new(server: NodeId, port: u16, connections: usize) -> Self {
        ClosedLoopConfig {
            server,
            port,
            connections,
            request_bytes: 128,
            think: SimDuration::ZERO,
            collector: None,
            timeout: SimDuration::from_secs(1),
        }
    }

    /// Spawns the generator threads on `client_node`.
    pub fn spawn(&self, cluster: &mut Cluster, client_node: NodeId, recorder: &Recorder) {
        let pid = cluster.spawn_process(client_node);
        let tags = Arc::new(AtomicU64::new(1_000_000_000));
        for _ in 0..self.connections.max(1) {
            let body = ClosedLoopWorker {
                cfg: self.clone(),
                state: State::Connect,
                fd: None,
                sent_at: SimTime::ZERO,
                recorder: recorder.clone(),
                tags: tags.clone(),
            };
            cluster.spawn_thread(client_node, pid, Box::new(body));
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Connect,
    Send,
    Await,
    Think,
}

struct ClosedLoopWorker {
    cfg: ClosedLoopConfig,
    state: State,
    fd: Option<Fd>,
    sent_at: SimTime,
    recorder: Recorder,
    tags: Arc<AtomicU64>,
}

impl ClosedLoopWorker {
    /// Abandons the current connection (if any) and re-dials.
    fn reconnect(&mut self) -> Action {
        self.state = State::Connect;
        match self.fd.take() {
            Some(fd) => Action::Syscall(Syscall::Close { fd }),
            None => Action::Syscall(Syscall::Nanosleep { dur: SimDuration::from_millis(10) }),
        }
    }
}

impl ThreadBody for ClosedLoopWorker {
    fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        match self.state {
            State::Connect => {
                self.state = State::Send;
                Action::Syscall(Syscall::Connect { node: self.cfg.server, port: self.cfg.port })
            }
            State::Send => {
                if self.fd.is_none() {
                    match ctx.last.fd() {
                        Some(fd) => self.fd = Some(fd),
                        None => {
                            self.state = State::Connect;
                            return Action::Syscall(Syscall::Nanosleep {
                                dur: SimDuration::from_millis(10),
                            });
                        }
                    }
                }
                self.state = State::Await;
                self.sent_at = ctx.now;
                self.recorder.note_sent(ctx.now);
                let tag = self.tags.fetch_add(1, Ordering::Relaxed);
                let span = self
                    .cfg
                    .collector
                    .as_ref()
                    .map(|c| c.start_trace())
                    .unwrap_or_default();
                Action::Syscall(Syscall::Send {
                    fd: self.fd.expect("connected"),
                    bytes: self.cfg.request_bytes,
                    meta: MsgMeta { tag, trace_id: span.trace_id, span_id: 0, status: 0, user: 0 },
                })
            }
            State::Await => {
                if ctx.last.is_err() {
                    // The send bounced: the server is gone or the
                    // connection was reset.
                    self.recorder.note_error(ctx.now);
                    return self.reconnect();
                }
                self.state = State::Think;
                Action::Syscall(Syscall::Recv {
                    fd: self.fd.expect("connected"),
                    timeout: Some(self.cfg.timeout),
                })
            }
            State::Think => {
                match &ctx.last {
                    SysResult::Msg(msg) => {
                        self.recorder.record_status(self.sent_at, ctx.now, msg.meta.status);
                    }
                    SysResult::Err(Errno::TimedOut) => {
                        // Deadline blown. Re-dial so a late reply can't be
                        // mistaken for the next request's response.
                        self.recorder.note_timeout(ctx.now);
                        return self.reconnect();
                    }
                    SysResult::Err(_) => {
                        self.recorder.note_error(ctx.now);
                        return self.reconnect();
                    }
                    _ => {}
                }
                self.state = State::Send;
                if self.cfg.think > SimDuration::ZERO {
                    Action::Syscall(Syscall::Nanosleep { dur: self.cfg.think })
                } else {
                    // Go straight to the next send.
                    self.step(ctx)
                }
            }
        }
    }

    fn label(&self) -> &str {
        "loadgen-closed"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults() {
        let c = ClosedLoopConfig::new(NodeId(1), 9000, 8);
        assert_eq!(c.connections, 8);
        assert_eq!(c.think, SimDuration::ZERO);
    }
}
