//! Open-loop (Poisson) load generation.
//!
//! Each connection is driven by a sender thread (exponential inter-arrival
//! sleeps, sends tagged requests) and a receiver thread (blocking receive
//! loop that matches tags to send times and records latency). Because the
//! sender never waits for responses, queueing delay at the server shows up
//! fully in the measured latency — the behaviour that makes tail latency
//! explode at saturation in Figure 5.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ditto_kernel::{
    Action, Cluster, Errno, Fd, MsgMeta, NodeId, Pid, Syscall, SysResult, ThreadBody, ThreadCtx,
};
use ditto_sim::dist::{Exponential, Sample};
use ditto_sim::time::{SimDuration, SimTime};
use ditto_trace::TraceCollector;
use parking_lot::Mutex;

use crate::recorder::Recorder;

/// A load-generator configuration that cannot be driven as asked.
///
/// Returned instead of silently degrading: a generator that accepts any
/// parameters and quietly emits near-zero traffic produces vacuously
/// green experiments, which is worse than failing loudly.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadConfigError {
    /// `connections` was zero — there is no thread to carry the load.
    NoConnections,
    /// `qps / connections` fell below 1 request/second: the per-connection
    /// Poisson process would have a mean inter-arrival gap over a second,
    /// so most sender threads spin near-idle while contributing nothing
    /// measurable to the window. Lower `connections` or raise `qps`.
    RateTooThin {
        /// Requested aggregate rate.
        qps: f64,
        /// Requested connection count.
        connections: usize,
    },
}

impl std::fmt::Display for LoadConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadConfigError::NoConnections => {
                write!(f, "open-loop generator configured with zero connections")
            }
            LoadConfigError::RateTooThin { qps, connections } => write!(
                f,
                "open-loop generator degenerates: {qps} qps across {connections} connections \
                 is {:.3} qps/connection (< 1); lower `connections` or raise `qps`",
                qps / *connections as f64
            ),
        }
    }
}

impl std::error::Error for LoadConfigError {}

/// Configuration of an open-loop generator.
///
/// # Contract
///
/// The aggregate `qps` is split **evenly** across `connections`
/// independent Poisson processes; [`OpenLoopConfig::spawn`] rejects
/// configurations where the per-connection share falls below one request
/// per second (see [`LoadConfigError::RateTooThin`]) rather than spinning
/// near-idle sender threads. To model a large population over few
/// connections at any rate shape, use
/// [`HybridLoadConfig`](crate::hybrid::HybridLoadConfig) instead.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Server machine.
    pub server: NodeId,
    /// Server port.
    pub port: u16,
    /// Aggregate target queries per second.
    pub qps: f64,
    /// Request payload bytes.
    pub request_bytes: u64,
    /// Number of connections (QPS is split evenly; `qps / connections`
    /// must stay ≥ 1).
    pub connections: usize,
    /// Optional distributed-trace collector to tag requests with.
    pub collector: Option<TraceCollector>,
    /// Client-side deadline: requests outstanding longer than this are
    /// counted as timeouts, and the receive loop wakes at this cadence to
    /// sweep them.
    pub timeout: SimDuration,
}

impl OpenLoopConfig {
    /// A single-connection generator at `qps` against `(server, port)`.
    pub fn new(server: NodeId, port: u16, qps: f64) -> Self {
        OpenLoopConfig {
            server,
            port,
            qps,
            request_bytes: 128,
            connections: 4,
            collector: None,
            timeout: SimDuration::from_secs(1),
        }
    }

    /// Validates the split contract: at least one connection, and at
    /// least 1 qps per connection.
    pub fn validate(&self) -> Result<(), LoadConfigError> {
        if self.connections == 0 {
            return Err(LoadConfigError::NoConnections);
        }
        if self.qps / (self.connections as f64) < 1.0 {
            return Err(LoadConfigError::RateTooThin {
                qps: self.qps,
                connections: self.connections,
            });
        }
        Ok(())
    }

    /// Spawns the generator threads on `client_node` inside `cluster`,
    /// reporting into `recorder`. Fails (spawning nothing) when the
    /// configuration violates [`OpenLoopConfig::validate`].
    pub fn spawn(
        &self,
        cluster: &mut Cluster,
        client_node: NodeId,
        recorder: &Recorder,
    ) -> Result<(), LoadConfigError> {
        self.validate()?;
        let pid = cluster.spawn_process(client_node);
        let tags = Arc::new(AtomicU64::new(1));
        for _conn in 0..self.connections {
            let body = OpenLoopSender {
                cfg: self.clone(),
                per_conn_qps: self.qps / self.connections as f64,
                state: SenderState::Connect,
                fd: None,
                pending: Arc::new(Mutex::new(HashMap::new())),
                recorder: recorder.clone(),
                tags: tags.clone(),
                last_tag: None,
            };
            cluster.spawn_thread(client_node, pid, Box::new(body));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SenderState {
    Connect,
    SpawnReceiver,
    Sleep,
    Send,
}

struct OpenLoopSender {
    cfg: OpenLoopConfig,
    per_conn_qps: f64,
    state: SenderState,
    fd: Option<Fd>,
    pending: Arc<Mutex<HashMap<u64, SimTime>>>,
    recorder: Recorder,
    tags: Arc<AtomicU64>,
    /// Tag of the most recent send, so a failed send can be retired.
    last_tag: Option<u64>,
}

impl ThreadBody for OpenLoopSender {
    fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        match self.state {
            SenderState::Connect => {
                self.state = SenderState::SpawnReceiver;
                Action::Syscall(Syscall::Connect { node: self.cfg.server, port: self.cfg.port })
            }
            SenderState::SpawnReceiver => {
                let Some(fd) = ctx.last.fd() else {
                    // Retry the connection after a backoff.
                    self.state = SenderState::Connect;
                    return Action::Syscall(Syscall::Nanosleep { dur: SimDuration::from_millis(10) });
                };
                self.fd = Some(fd);
                self.state = SenderState::Sleep;
                Action::Syscall(Syscall::Spawn {
                    body: Box::new(OpenLoopReceiver {
                        fd,
                        pending: self.pending.clone(),
                        recorder: self.recorder.clone(),
                        timeout: self.cfg.timeout,
                    }),
                })
            }
            SenderState::Sleep => {
                if ctx.last.is_err() {
                    // The previous send bounced (reset/closed connection):
                    // retire its tag and re-dial after a short pause.
                    if let Some(tag) = self.last_tag.take() {
                        self.pending.lock().remove(&tag);
                    }
                    self.recorder.note_error(ctx.now);
                    self.state = SenderState::Connect;
                    return Action::Syscall(Syscall::Nanosleep {
                        dur: SimDuration::from_millis(10),
                    });
                }
                self.state = SenderState::Send;
                let gap = Exponential::new(self.per_conn_qps.max(1e-9))
                    .sample(ctx.rng);
                Action::Syscall(Syscall::Nanosleep { dur: SimDuration::from_secs_f64(gap) })
            }
            SenderState::Send => {
                self.state = SenderState::Sleep;
                let tag = self.tags.fetch_add(1, Ordering::Relaxed);
                let span = self
                    .cfg
                    .collector
                    .as_ref()
                    .map(|c| c.start_trace())
                    .unwrap_or_default();
                self.pending.lock().insert(tag, ctx.now);
                self.last_tag = Some(tag);
                self.recorder.note_sent(ctx.now);
                Action::Syscall(Syscall::Send {
                    fd: self.fd.expect("connected"),
                    bytes: self.cfg.request_bytes,
                    meta: MsgMeta { tag, trace_id: span.trace_id, span_id: 0, status: 0, user: 0 },
                })
            }
        }
    }

    fn label(&self) -> &str {
        "loadgen-send"
    }
}

/// Blocking receive loop shared by the per-connection open-loop sender
/// and the hybrid engine's multiplexed pool: matches response tags to
/// send times, records latency/status, and sweeps the client deadline.
pub(crate) struct OpenLoopReceiver {
    pub(crate) fd: Fd,
    pub(crate) pending: Arc<Mutex<HashMap<u64, SimTime>>>,
    pub(crate) recorder: Recorder,
    pub(crate) timeout: SimDuration,
}

impl OpenLoopReceiver {
    /// Retires every pending request older than the client deadline as
    /// a timeout.
    fn sweep_stale(&self, now: SimTime) {
        let mut p = self.pending.lock();
        let stale: Vec<u64> = p
            .iter()
            .filter(|(_, &sent)| now.saturating_since(sent) >= self.timeout)
            .map(|(&tag, _)| tag)
            .collect();
        for tag in stale {
            p.remove(&tag);
            self.recorder.note_timeout(now);
        }
    }
}

impl ThreadBody for OpenLoopReceiver {
    fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
        match &ctx.last {
            SysResult::Msg(msg) => {
                if let Some(sent) = self.pending.lock().remove(&msg.meta.tag) {
                    self.recorder.record_status(sent, ctx.now, msg.meta.status);
                }
                // Enforce the client deadline on every wakeup, not only
                // when the connection goes fully silent: during a partial
                // outage a trickle of completions keeps arriving while
                // other requests sit in a saturated queue forever, and
                // those must surface as timeouts, not vanish.
                self.sweep_stale(ctx.now);
            }
            SysResult::Err(Errno::TimedOut) => {
                // Nothing arrived for a full deadline: everything past
                // the deadline is lost on the wire or stuck on a dead
                // server.
                self.sweep_stale(ctx.now);
            }
            SysResult::Err(_) => {
                // Connection reset/closed: everything outstanding is lost.
                let mut p = self.pending.lock();
                let lost = p.len();
                p.clear();
                for _ in 0..lost {
                    self.recorder.note_error(ctx.now);
                }
                return Action::Exit;
            }
            _ => {}
        }
        Action::Syscall(Syscall::Recv { fd: self.fd, timeout: Some(self.timeout) })
    }

    fn label(&self) -> &str {
        "loadgen-recv"
    }
}

/// Spawns a process that does nothing but keep a machine's SMT siblings
/// or cores busy — used as a CPU bully in interference tests.
pub fn spawn_spinner(cluster: &mut Cluster, node: NodeId, pid: Pid, instructions_per_slice: u64) {
    struct Spinner {
        body: ditto_hw::codegen::Body,
    }
    impl ThreadBody for Spinner {
        fn step(&mut self, ctx: &mut ThreadCtx<'_>) -> Action {
            Action::Compute(self.body.instantiate(ctx.rng))
        }
        fn label(&self) -> &str {
            "spinner"
        }
    }
    let params = ditto_hw::codegen::BodyParams::minimal(instructions_per_slice, 0x7000_0000, 99);
    cluster.spawn_thread(node, pid, Box::new(Spinner { body: ditto_hw::codegen::Body::new(&params) }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults() {
        let c = OpenLoopConfig::new(NodeId(0), 80, 1000.0);
        assert_eq!(c.connections, 4);
        assert_eq!(c.request_bytes, 128);
        assert!(c.collector.is_none());
    }

    #[test]
    fn degenerate_splits_are_rejected() {
        let mut c = OpenLoopConfig::new(NodeId(0), 80, 1000.0);
        assert_eq!(c.validate(), Ok(()));
        // Exactly 1 qps/connection is the floor of the contract.
        c.connections = 1000;
        assert_eq!(c.validate(), Ok(()));
        // Below it, each sender's mean gap exceeds a second: reject.
        c.connections = 1001;
        assert!(matches!(c.validate(), Err(LoadConfigError::RateTooThin { .. })));
        c.connections = 0;
        assert_eq!(c.validate(), Err(LoadConfigError::NoConnections));
        let msg = LoadConfigError::RateTooThin { qps: 10.0, connections: 100 }.to_string();
        assert!(msg.contains("0.100 qps/connection"), "{msg}");
    }
}
