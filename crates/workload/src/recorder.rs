//! Shared latency/throughput collection.

use std::sync::Arc;

use ditto_kernel::MsgMeta;
use ditto_sim::stats::{LatencyHistogram, LatencySummary};
use ditto_sim::time::{SimDuration, SimTime};
use parking_lot::Mutex;

#[derive(Debug)]
struct Inner {
    hist: LatencyHistogram,
    sent: u64,
    received: u64,
    degraded: u64,
    rejected: u64,
    timeouts: u64,
    errors: u64,
    window_start: SimTime,
    window_end: Option<SimTime>,
}

/// A thread-safe recorder shared between generator threads and the
/// harness. Only samples inside the measurement window count.
///
/// # Window-edge semantics
///
/// Outcomes are counted **at completion**: a request lands in
/// `received`/`timeouts`/`errors` only if its completion falls inside the
/// window (and, for responses, it was also sent at or after the window
/// opened — latency spent warming up must not leak in). `sent` is counted
/// **at send** and measures *offered* load; a request sent near the end
/// of the window whose completion falls past `end_window` stays in `sent`
/// but in no outcome bucket. Quality ratios therefore never use `sent` as
/// a denominator — [`LoadSummary::availability`] divides by completed
/// attempts — so still-in-flight requests at window close skew neither
/// availability nor goodput.
#[derive(Debug, Clone)]
pub struct Recorder {
    inner: Arc<Mutex<Inner>>,
}

impl Recorder {
    /// Creates a recorder with the window open from time zero.
    pub fn new() -> Self {
        Recorder {
            inner: Arc::new(Mutex::new(Inner {
                hist: LatencyHistogram::new(),
                sent: 0,
                received: 0,
                degraded: 0,
                rejected: 0,
                timeouts: 0,
                errors: 0,
                window_start: SimTime::ZERO,
                window_end: None,
            })),
        }
    }

    /// Opens the measurement window at `t` (discarding the warmup).
    pub fn start_window(&self, t: SimTime) {
        let mut i = self.inner.lock();
        i.window_start = t;
        i.window_end = None;
        i.hist = LatencyHistogram::new();
        i.sent = 0;
        i.received = 0;
        i.degraded = 0;
        i.rejected = 0;
        i.timeouts = 0;
        i.errors = 0;
    }

    /// Closes the window at `t` (later samples are dropped).
    pub fn end_window(&self, t: SimTime) {
        self.inner.lock().window_end = Some(t);
    }

    fn in_window(i: &Inner, t: SimTime) -> bool {
        t >= i.window_start && i.window_end.is_none_or(|e| t <= e)
    }

    /// Notes a request sent at `t`.
    pub fn note_sent(&self, t: SimTime) {
        let mut i = self.inner.lock();
        if Self::in_window(&i, t) {
            i.sent += 1;
        }
    }

    /// Records a completed request sent at `sent` and finished at `now`.
    pub fn record(&self, sent: SimTime, now: SimTime) {
        self.record_status(sent, now, 0);
    }

    /// Records a completed request with the response's wire status byte.
    /// `STATUS_REJECTED` responses land in the distinct `rejected`
    /// bucket — never in `received`, never as a latency sample — so a
    /// shed request can't masquerade as a fast success; any other
    /// non-zero status counts as degraded.
    pub fn record_status(&self, sent: SimTime, now: SimTime, status: u8) {
        let mut i = self.inner.lock();
        if Self::in_window(&i, now) && sent >= i.window_start {
            if status == MsgMeta::STATUS_REJECTED {
                i.rejected += 1;
                return;
            }
            i.received += 1;
            if status != 0 {
                i.degraded += 1;
            }
            i.hist.record(now.saturating_since(sent));
        }
    }

    /// Notes a request shed by admission control at `t`.
    pub fn note_rejected(&self, t: SimTime) {
        let mut i = self.inner.lock();
        if Self::in_window(&i, t) {
            i.rejected += 1;
        }
    }

    /// Notes a request that exceeded the client deadline at `t`.
    pub fn note_timeout(&self, t: SimTime) {
        let mut i = self.inner.lock();
        if Self::in_window(&i, t) {
            i.timeouts += 1;
        }
    }

    /// Notes a request error at `t`.
    pub fn note_error(&self, t: SimTime) {
        let mut i = self.inner.lock();
        if Self::in_window(&i, t) {
            i.errors += 1;
        }
    }

    /// Snapshot of the raw latency histogram — bucket-exact, so two
    /// deterministic runs can be compared for bit-identical behaviour.
    pub fn histogram(&self) -> LatencyHistogram {
        self.inner.lock().hist.clone()
    }

    /// Merges another recorder's window contents into this one:
    /// histograms merge bucket-exactly, counters sum. Window bounds are
    /// left untouched — merging is for aggregating *finished* windows
    /// (e.g. per-experiment recorders into a fleet-level rollup), not for
    /// splicing live ones.
    pub fn merge_from(&self, other: &Recorder) {
        let o = other.inner.lock();
        let mut i = self.inner.lock();
        i.hist.merge(&o.hist);
        i.sent += o.sent;
        i.received += o.received;
        i.degraded += o.degraded;
        i.rejected += o.rejected;
        i.timeouts += o.timeouts;
        i.errors += o.errors;
    }

    /// Summarises the window, computing throughput against `window`.
    pub fn summary(&self, window: SimDuration) -> LoadSummary {
        let i = self.inner.lock();
        let secs = window.as_secs_f64();
        let ok = i.received - i.degraded;
        LoadSummary {
            latency: i.hist.summary(),
            sent: i.sent,
            received: i.received,
            degraded: i.degraded,
            rejected: i.rejected,
            timeouts: i.timeouts,
            errors: i.errors,
            throughput_qps: if secs > 0.0 { i.received as f64 / secs } else { 0.0 },
            goodput_qps: if secs > 0.0 { ok as f64 / secs } else { 0.0 },
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

/// The outcome of one load run.
#[derive(Debug, Clone, Copy)]
pub struct LoadSummary {
    /// Latency summary of completed requests.
    pub latency: LatencySummary,
    /// Requests sent in the window.
    pub sent: u64,
    /// Responses received in the window.
    pub received: u64,
    /// Responses marked degraded (a downstream failed past its budget).
    pub degraded: u64,
    /// Requests shed by admission control (`STATUS_REJECTED` responses).
    pub rejected: u64,
    /// Requests that exceeded the client deadline.
    pub timeouts: u64,
    /// Errors observed (resets, refused connections).
    pub errors: u64,
    /// Achieved throughput (all responses) over the window.
    pub throughput_qps: f64,
    /// Successful-response throughput over the window.
    pub goodput_qps: f64,
}

/// Exact cross-run load aggregation.
///
/// [`LoadSummary`] carries already-collapsed percentiles, which cannot be
/// merged without error; the aggregate instead accumulates the raw
/// bucket-exact histograms (plus counters and window lengths) and
/// re-derives a summary from the merged histogram. The fleet runner uses
/// this to roll per-experiment outcomes up into matrix-level tables.
#[derive(Debug, Clone, Default)]
pub struct LoadAggregate {
    hist: LatencyHistogram,
    sent: u64,
    received: u64,
    degraded: u64,
    rejected: u64,
    timeouts: u64,
    errors: u64,
    window: SimDuration,
}

impl LoadAggregate {
    /// Creates an empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in one run's summary together with its raw histogram and the
    /// measurement window it was taken over.
    pub fn add(&mut self, summary: &LoadSummary, hist: &LatencyHistogram, window: SimDuration) {
        self.hist.merge(hist);
        self.sent += summary.sent;
        self.received += summary.received;
        self.degraded += summary.degraded;
        self.rejected += summary.rejected;
        self.timeouts += summary.timeouts;
        self.errors += summary.errors;
        self.window += window;
    }

    /// Total window length folded in so far.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// The merged bucket-exact histogram.
    pub fn histogram(&self) -> &LatencyHistogram {
        &self.hist
    }

    /// Summarises the aggregate: percentiles from the merged histogram,
    /// throughput against the summed windows.
    pub fn summary(&self) -> LoadSummary {
        let secs = self.window.as_secs_f64();
        let ok = self.received - self.degraded;
        LoadSummary {
            latency: self.hist.summary(),
            sent: self.sent,
            received: self.received,
            degraded: self.degraded,
            rejected: self.rejected,
            timeouts: self.timeouts,
            errors: self.errors,
            throughput_qps: if secs > 0.0 { self.received as f64 / secs } else { 0.0 },
            goodput_qps: if secs > 0.0 { ok as f64 / secs } else { 0.0 },
        }
    }
}

impl LoadSummary {
    /// Fraction of completed attempts that succeeded (full result, within
    /// deadline): `(received - degraded) / (received + rejected +
    /// timeouts + errors)`. 1.0 when nothing completed in the window.
    ///
    /// Shed requests count against availability — the client asked and
    /// was turned away — but as their own `rejected` category, distinct
    /// from timeouts and errors, because shedding is the *controlled*
    /// failure mode: cheap, immediate, and bounded, where a timeout is
    /// neither.
    ///
    /// The denominator is completed attempts, not `sent`: `sent` counts
    /// offered load at send time, so requests still in flight when the
    /// window closes would otherwise be silently charged as failures.
    pub fn availability(&self) -> f64 {
        let attempts = self.received + self.rejected + self.timeouts + self.errors;
        if attempts == 0 {
            return 1.0;
        }
        let ok = self.received.saturating_sub(self.degraded);
        ok as f64 / attempts as f64
    }

    /// Fraction of completed attempts that failed (timed out, errored, or
    /// degraded).
    pub fn error_rate(&self) -> f64 {
        1.0 - self.availability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_inside_window_only() {
        let r = Recorder::new();
        r.start_window(SimTime::from_nanos(1000));
        // Sent before the window: dropped.
        r.record(SimTime::from_nanos(0), SimTime::from_nanos(2000));
        // Fully inside: kept.
        r.record(SimTime::from_nanos(1500), SimTime::from_nanos(2500));
        let s = r.summary(SimDuration::from_nanos(1000));
        assert_eq!(s.received, 1);
        assert_eq!(s.latency.count, 1);
    }

    #[test]
    fn end_window_drops_later_samples() {
        let r = Recorder::new();
        r.end_window(SimTime::from_nanos(100));
        r.record(SimTime::from_nanos(50), SimTime::from_nanos(200));
        assert_eq!(r.summary(SimDuration::from_nanos(100)).received, 0);
    }

    #[test]
    fn throughput_is_received_over_window() {
        let r = Recorder::new();
        for i in 0..10 {
            r.note_sent(SimTime::from_nanos(i));
            r.record(SimTime::from_nanos(i), SimTime::from_nanos(i + 10));
        }
        let s = r.summary(SimDuration::from_secs(2));
        assert_eq!(s.sent, 10);
        assert!((s.throughput_qps - 5.0).abs() < 1e-9);
    }

    #[test]
    fn degraded_responses_reduce_availability_and_goodput() {
        let r = Recorder::new();
        for i in 0..10 {
            r.note_sent(SimTime::from_nanos(i));
            r.record_status(SimTime::from_nanos(i), SimTime::from_nanos(i + 10), u8::from(i < 3));
        }
        r.note_timeout(SimTime::from_nanos(50));
        let s = r.summary(SimDuration::from_secs(1));
        assert_eq!(s.received, 10);
        assert_eq!(s.degraded, 3);
        assert_eq!(s.timeouts, 1);
        // 7 full successes out of 11 completed attempts (10 received + 1
        // timeout).
        assert!((s.availability() - 7.0 / 11.0).abs() < 1e-9, "{}", s.availability());
        assert!((s.goodput_qps - 7.0).abs() < 1e-9);
        assert!((s.throughput_qps - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rejected_is_its_own_category_and_dents_availability() {
        // Regression: a STATUS_REJECTED response used to land in
        // `received` with a (tiny) latency sample, so shedding half the
        // offered load read as 100% availability with a *better* p99.
        let r = Recorder::new();
        for i in 0..8u64 {
            r.note_sent(SimTime::from_nanos(i));
            let status =
                if i < 2 { MsgMeta::STATUS_REJECTED } else { MsgMeta::STATUS_OK };
            r.record_status(SimTime::from_nanos(i), SimTime::from_nanos(i + 100), status);
        }
        r.note_rejected(SimTime::from_nanos(50));
        let s = r.summary(SimDuration::from_secs(1));
        assert_eq!(s.received, 6, "rejected responses are not received");
        assert_eq!(s.rejected, 3);
        assert_eq!(s.latency.count, 6, "no latency sample for a shed request");
        // 6 successes over 9 completed attempts (6 received + 3 rejected).
        assert!((s.availability() - 6.0 / 9.0).abs() < 1e-12, "{}", s.availability());
        assert!((s.goodput_qps - 6.0).abs() < 1e-9, "goodput excludes shed requests");
        // Merge and aggregate both carry the category.
        let other = Recorder::new();
        other.note_rejected(SimTime::ZERO);
        r.merge_from(&other);
        assert_eq!(r.summary(SimDuration::from_secs(1)).rejected, 4);
        let mut agg = LoadAggregate::new();
        let w = SimDuration::from_secs(1);
        agg.add(&r.summary(w), &r.histogram(), w);
        agg.add(&r.summary(w), &r.histogram(), w);
        assert_eq!(agg.summary().rejected, 8);
    }

    #[test]
    fn window_edge_four_corners() {
        // send {in, out} × complete {in, out} of the window [1000, 2000].
        let r = Recorder::new();
        r.start_window(SimTime::from_nanos(1000));
        r.end_window(SimTime::from_nanos(2000));
        let send = |t: u64, done: u64| {
            r.note_sent(SimTime::from_nanos(t));
            r.record(SimTime::from_nanos(t), SimTime::from_nanos(done));
        };
        send(1100, 1500); // in/in: sent + received
        send(1900, 2500); // in/out: offered load only
        send(500, 1500); // out/in: warmup latency must not leak in
        send(500, 2500); // out/out: invisible
        let s = r.summary(SimDuration::from_nanos(1000));
        assert_eq!(s.sent, 2, "sent counts at send time (offered load)");
        assert_eq!(s.received, 1, "received counts at completion time");
        assert_eq!(s.latency.count, 1);
        assert_eq!((s.timeouts, s.errors), (0, 0));
    }

    #[test]
    fn in_flight_at_window_close_does_not_dent_availability() {
        // Regression: availability used sent as its denominator, so a
        // request still in flight at end_window (in `sent`, in no outcome
        // bucket) read as a failure: 9 received / 10 sent = 0.9 with zero
        // actual failures.
        let r = Recorder::new();
        r.end_window(SimTime::from_nanos(1000));
        for i in 0..10u64 {
            r.note_sent(SimTime::from_nanos(i));
        }
        for i in 0..9u64 {
            r.record(SimTime::from_nanos(i), SimTime::from_nanos(500 + i));
        }
        // The 10th completes after the window closed.
        r.record(SimTime::from_nanos(9), SimTime::from_nanos(1500));
        let s = r.summary(SimDuration::from_nanos(1000));
        assert_eq!((s.sent, s.received), (10, 9));
        assert!((s.availability() - 1.0).abs() < 1e-12, "{}", s.availability());
        assert!(s.error_rate().abs() < 1e-12);
    }

    #[test]
    fn late_timeouts_and_errors_count_at_completion() {
        let r = Recorder::new();
        r.end_window(SimTime::from_nanos(1000));
        r.note_sent(SimTime::from_nanos(10));
        r.note_sent(SimTime::from_nanos(20));
        r.note_timeout(SimTime::from_nanos(900)); // completes in-window
        r.note_error(SimTime::from_nanos(1500)); // completes after close
        let s = r.summary(SimDuration::from_nanos(1000));
        assert_eq!((s.timeouts, s.errors), (1, 0));
        assert!(s.availability().abs() < 1e-12, "one attempt, one timeout");
    }

    #[test]
    fn availability_is_one_with_no_traffic() {
        let s = Recorder::new().summary(SimDuration::from_secs(1));
        assert!((s.availability() - 1.0).abs() < 1e-12);
        assert!(s.error_rate().abs() < 1e-12);
    }

    #[test]
    fn clones_share_state() {
        let r = Recorder::new();
        let r2 = r.clone();
        r2.record(SimTime::ZERO, SimTime::from_nanos(5));
        assert_eq!(r.summary(SimDuration::from_secs(1)).received, 1);
    }

    #[test]
    fn merge_from_sums_counters_and_histograms() {
        let a = Recorder::new();
        let b = Recorder::new();
        a.note_sent(SimTime::ZERO);
        a.record(SimTime::ZERO, SimTime::from_nanos(100));
        b.note_sent(SimTime::ZERO);
        b.record(SimTime::ZERO, SimTime::from_nanos(300));
        b.note_timeout(SimTime::from_nanos(10));
        a.merge_from(&b);
        let s = a.summary(SimDuration::from_secs(1));
        assert_eq!(s.sent, 2);
        assert_eq!(s.received, 2);
        assert_eq!(s.timeouts, 1);
        assert_eq!(a.histogram().count(), 2);
    }

    #[test]
    fn aggregate_matches_single_recorder_over_joint_window() {
        // Two half-window recorders aggregated must equal one recorder
        // that saw all samples over the full window.
        let joint = Recorder::new();
        let mut agg = LoadAggregate::new();
        for part in 0..2u64 {
            let r = Recorder::new();
            for i in 0..5 {
                let t = SimTime::from_nanos(part * 1000 + i * 10);
                r.note_sent(t);
                joint.note_sent(t);
                r.record(t, t + SimDuration::from_nanos(50 + i));
                joint.record(t, t + SimDuration::from_nanos(50 + i));
            }
            let w = SimDuration::from_secs(1);
            agg.add(&r.summary(w), &r.histogram(), w);
        }
        let merged = agg.summary();
        let whole = joint.summary(SimDuration::from_secs(2));
        assert_eq!(merged.sent, whole.sent);
        assert_eq!(merged.received, whole.received);
        assert_eq!(merged.latency, whole.latency);
        assert!((merged.throughput_qps - whole.throughput_qps).abs() < 1e-9);
        assert_eq!(agg.histogram(), &joint.histogram());
        assert_eq!(agg.window(), SimDuration::from_secs(2));
    }

    #[test]
    fn restarting_window_resets_counts() {
        let r = Recorder::new();
        r.record(SimTime::ZERO, SimTime::from_nanos(5));
        r.start_window(SimTime::from_nanos(10));
        assert_eq!(r.summary(SimDuration::from_secs(1)).received, 0);
    }
}
