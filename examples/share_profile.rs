//! The sharing workflow that motivates the paper (§1, §7.2): a cloud
//! provider profiles a production service and publishes the *profile* —
//! post-processed statistics, no application logic; a hardware vendor
//! loads that artifact and regenerates a runnable synthetic benchmark,
//! never touching the original.
//!
//! Run with `cargo run --release --example share_profile`.

use ditto::app::apps;
use ditto::core::harness::{LoadKind, Testbed};
use ditto::core::Ditto;
use ditto::profile::AppProfile;

fn main() {
    let load = LoadKind::OpenLoop { qps: 5_000.0, connections: 8 };

    // --- Provider side: profile and export ---
    let provider_bed = Testbed::default_ab(314);
    let original = provider_bed.run(|_, _| apps::memcached(9000), &load, true);
    let profile = original.profile.as_ref().expect("profiled");
    let artifact = profile.to_json().expect("serializable");
    println!(
        "provider exports a {}-byte JSON artifact ({} requests profiled)",
        artifact.len(),
        profile.requests
    );

    // The artifact contains statistics only. Spot-check: no instruction
    // sequences, no code, no addresses — just histograms and counters.
    assert!(!artifact.contains("instrs"), "no code sequences in the artifact");

    // --- Vendor side: import and regenerate, on different hardware ---
    let imported = AppProfile::from_json(&artifact).expect("round-trips");
    let vendor_bed = Testbed {
        server: ditto::hw::platform::PlatformSpec::c(), // vendor's box differs
        ..Testbed::default_ab(2718)
    };
    let synthetic = vendor_bed.run_clone(&Ditto::new(), &imported, &load);

    println!(
        "vendor regenerated the clone and measured: IPC {:.3}, p99 {:.2}ms, {:.0} QPS",
        synthetic.metrics.ipc,
        synthetic.load.latency.p99.as_millis_f64(),
        synthetic.load.throughput_qps
    );
    println!(
        "original on the provider's platform: IPC {:.3}, p99 {:.2}ms",
        original.metrics.ipc,
        original.load.latency.p99.as_millis_f64()
    );
    println!("\n(The vendor never saw the original service — only the JSON.)");
}
