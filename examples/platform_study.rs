//! Portability study: profile once, run anywhere.
//!
//! Run with `cargo run --release --example platform_study`.
//!
//! The paper's §6.2.2 claim: clones are built from platform-independent
//! features, so a service profiled on Platform A reacts correctly to
//! Platforms B and C without reprofiling (smaller L2 → more L2 misses,
//! older core → lower IPC, HDD → slower disk-bound latency).

use ditto::app::apps;
use ditto::core::harness::{LoadKind, Testbed};
use ditto::core::{Ditto, FineTuner};
use ditto::hw::platform::PlatformSpec;
use ditto::sim::time::SimDuration;

fn main() {
    let load = LoadKind::ClosedLoop { connections: 8, think: SimDuration::ZERO };
    let bed_a = Testbed::default_ab(11);

    println!("profiling MongoDB on Platform A only…");
    let profiled = bed_a.run(|c, n| apps::mongodb(c, n, 9000, 4 << 30), &load, true);
    let profile = profiled.profile.as_ref().expect("profiled");
    let tuner = FineTuner { max_iterations: 4, tolerance_pct: 10.0, gain: 0.6 };
    let (tuned, _) = bed_a.tune_clone(&Ditto::new(), profile, &load, &tuner);

    println!("\n{:<10} {:>6} {:>9} {:>9} {:>9} {:>10}", "platform", "kind", "IPC", "L2 miss", "LLC miss", "p99 (ms)");
    for platform in PlatformSpec::table1() {
        let bed = Testbed { server: platform.clone(), ..bed_a.clone() };
        let orig = bed.run(|c, n| apps::mongodb(c, n, 9000, 4 << 30), &load, false);
        let synth = bed.run_clone(&tuned, profile, &load);
        for (kind, out) in [("orig", &orig), ("synth", &synth)] {
            println!(
                "{:<10} {:>6} {:>9.3} {:>8.1}% {:>8.1}% {:>10.2}",
                platform.name,
                kind,
                out.metrics.ipc,
                out.metrics.l2_miss_rate * 100.0,
                out.metrics.llc_miss_rate * 100.0,
                out.load.latency.p99.as_millis_f64(),
            );
        }
    }
    println!(
        "\nExpect: B/C show higher L2 miss rates than A (smaller L2), and\n\
         B/C show much higher p99 than A (HDD vs SSD) — for BOTH rows,\n\
         without the clone ever being profiled off Platform A."
    );
}
