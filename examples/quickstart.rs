//! Quickstart: clone one service, end to end, in ~40 lines of logic.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! The flow is the paper's Figure 3: deploy the original (a Memcached-like
//! KVS) on a simulated platform-A server, drive it with an open-loop load
//! generator, profile it with the simulated SystemTap/SDE/Valgrind/perf
//! stack, generate the synthetic clone, and run the clone under the same
//! load — then compare what the counters saw.

use ditto::app::apps;
use ditto::core::harness::{LoadKind, Testbed};
use ditto::core::{Ditto, FineTuner};

fn main() {
    let testbed = Testbed::default_ab(2024);
    let load = LoadKind::OpenLoop { qps: 6_000.0, connections: 8 };

    println!("deploying + profiling the original Memcached model…");
    let original = testbed.run(|_, _| apps::memcached(9000), &load, true);
    let profile = original.profile.as_ref().expect("profiling was enabled");
    println!(
        "  profiled {} requests, {:.0} user instructions/request",
        profile.requests,
        profile.instructions_per_request()
    );
    println!("  inferred skeleton: {:?}", profile.threads.network);

    println!("generating + fine-tuning the clone…");
    let tuner = FineTuner { max_iterations: 5, tolerance_pct: 8.0, gain: 0.6 };
    let (tuned, trace) = testbed.tune_clone(&Ditto::new(), profile, &load, &tuner);
    println!(
        "  tuner ran {} iterations (converged: {})",
        trace.iterations, trace.converged
    );

    println!("running the synthetic clone under the same load…");
    let synthetic = testbed.run_clone(&tuned, profile, &load);

    println!("\n{:<12} {:>10} {:>10}", "metric", "actual", "synthetic");
    for ((name, a), (_, s)) in original
        .metrics
        .named()
        .iter()
        .zip(synthetic.metrics.named().iter())
    {
        println!("{name:<12} {a:>10.4} {s:>10.4}");
    }
    println!(
        "{:<12} {:>10.0} {:>10.0}",
        "QPS", original.load.throughput_qps, synthetic.load.throughput_qps
    );
    println!(
        "{:<12} {:>9.2}ms {:>9.2}ms",
        "p99",
        original.load.latency.p99.as_millis_f64(),
        synthetic.load.latency.p99.as_millis_f64()
    );
}
