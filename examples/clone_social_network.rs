//! Clone a full microservice topology.
//!
//! Run with `cargo run --release --example clone_social_network`.
//!
//! Deploys the 18-tier Social Network, collects distributed traces
//! (Jaeger-equivalent), extracts the RPC dependency DAG with per-edge call
//! ratios, profiles every tier, clones the whole graph — every tier
//! replaced by a synthetic counterpart — and compares the end-to-end
//! latency distribution (the paper's Figure 6).

use ditto::core::Ditto;
use ditto::hw::platform::PlatformSpec;
use ditto_bench::social_experiment::{run_original, run_synthetic};

fn main() {
    let platform = PlatformSpec::a();
    let qps = 800.0;

    println!("deploying + tracing + profiling the original Social Network…");
    let original = run_original(&platform, qps, 7, true);
    let graph = original.graph.as_ref().expect("tracing was enabled");
    println!("traced dependency graph:\n{graph}");

    println!("cloning all {} tiers…", graph.services.len());
    let ditto = Ditto::new();
    let synthetic = run_synthetic(&platform, &ditto, graph, &original.profiles, qps, 8);

    println!("\nend-to-end latency, every tier synthetic vs original:");
    println!("{:<12} {:>10} {:>10}", "", "actual", "synthetic");
    println!(
        "{:<12} {:>10.0} {:>10.0}",
        "QPS", original.e2e.throughput_qps, synthetic.e2e.throughput_qps
    );
    for (name, a, s) in [
        ("p50", original.e2e.latency.p50, synthetic.e2e.latency.p50),
        ("p95", original.e2e.latency.p95, synthetic.e2e.latency.p95),
        ("p99", original.e2e.latency.p99, synthetic.e2e.latency.p99),
    ] {
        println!(
            "{:<12} {:>8.2}ms {:>8.2}ms",
            name,
            a.as_millis_f64(),
            s.as_millis_f64()
        );
    }

    println!("\nper-tier IPC (pinned tiers):");
    for tier in ["text", "social-graph"] {
        println!(
            "  {tier:<14} actual {:.3}  synthetic {:.3}",
            original.tier_metrics[tier].ipc, synthetic.tier_metrics[tier].ipc
        );
    }
}
