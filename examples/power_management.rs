//! Power-management what-if study on a clone (the paper's §6.6 use case):
//! a cloud provider hands the synthetic Memcached to a vendor, who
//! explores core-count × frequency configurations against a 1 ms QoS —
//! without ever seeing the original's code.
//!
//! Run with `cargo run --release --example power_management`.

use ditto::app::apps;
use ditto::core::harness::{LoadKind, Testbed};
use ditto::core::{Ditto, FineTuner};
use ditto::kernel::NodeId;

fn main() {
    let load = LoadKind::OpenLoop { qps: 10_000.0, connections: 8 };
    let bed = Testbed::default_ab(5150);

    println!("profiling Memcached at 10k QPS…");
    let profiled = bed.run(|_, _| apps::memcached(9000), &load, true);
    let profile = profiled.profile.as_ref().expect("profiled");
    let tuner = FineTuner { max_iterations: 4, tolerance_pct: 10.0, gain: 0.6 };
    let (tuned, _) = bed.tune_clone(&Ditto::new(), profile, &load, &tuner);

    println!("\nsynthetic Memcached p99 (ms) across power configurations:");
    print!("{:>8}", "");
    for cores in [4, 8, 12, 16] {
        print!("{:>10}", format!("{cores} cores"));
    }
    println!();
    for freq in [2.1, 1.7, 1.4, 1.1] {
        print!("{:>8}", format!("{freq:.1}GHz"));
        for cores in [4usize, 8, 12, 16] {
            let out = bed.run_with(
                |c, n| tuned.clone_service(c, n, 9000, profile),
                &load,
                false,
                |c, _| {
                    let m = c.machine_mut(NodeId(0));
                    m.set_active_cores(cores);
                    m.set_frequency(freq);
                },
            );
            let p99 = out.load.latency.p99.as_millis_f64();
            let marker = if p99 > 1.0 { "X" } else { " " };
            print!("{:>10}", format!("{p99:.2}{marker}"));
        }
        println!();
    }
    println!("\nX = violates the 1 ms QoS: those configurations cannot be\npower-managed down, exactly the decision the clone lets a vendor make.");
}
