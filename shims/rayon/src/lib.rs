//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of the rayon API the experiment fleet uses: slice
//! `par_iter().map(..).collect()`, `ThreadPoolBuilder`/`ThreadPool::install`
//! for explicit thread counts, and `current_num_threads` honouring
//! `RAYON_NUM_THREADS`.
//!
//! The execution engine is a real work-stealing scheduler: every parallel
//! call partitions the index space into per-worker deques; a worker pops
//! work from the front of its own deque and, when empty, steals the back
//! half of a victim's deque. Results are merged **in index order**, so the
//! output of a parallel map is identical to the sequential map regardless
//! of worker count or steal interleaving — the property the deterministic
//! experiment fleet is built on.
//!
//! Unlike real rayon there is no persistent global pool: workers are
//! scoped threads spawned per parallel call. Spawn cost (~10 µs/thread) is
//! noise next to the multi-millisecond experiments this workspace fans out.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::Mutex;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static INSTALLED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// The number of threads the next parallel call will use: an
/// [`ThreadPool::install`] override if one is active, else
/// `RAYON_NUM_THREADS` when set to a positive integer, else the machine's
/// available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = INSTALLED_THREADS.with(|t| t.get()) {
        return n;
    }
    match std::env::var("RAYON_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Pops one task for worker `me`: its own deque first, then the back half
/// of the first non-empty victim (classic steal-half).
fn next_task(deques: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
    if let Some(idx) = lock(&deques[me]).pop_front() {
        return Some(idx);
    }
    let n = deques.len();
    for off in 1..n {
        let victim = (me + off) % n;
        let stolen: Vec<usize> = {
            let mut q = lock(&deques[victim]);
            let take = q.len().div_ceil(2);
            (0..take).filter_map(|_| q.pop_back()).collect()
        };
        if let Some((&first, rest)) = stolen.split_first() {
            let mut own = lock(&deques[me]);
            for &idx in rest {
                own.push_back(idx);
            }
            return Some(first);
        }
    }
    None
}

/// Applies `f` to every index in `0..len` across `threads` workers with
/// work stealing, returning results in index order. The public iterator
/// sugar and the experiment fleet both bottom out here.
pub fn run_indexed<R, F>(len: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.clamp(1, len.max(1));
    if threads == 1 {
        return (0..len).map(f).collect();
    }

    // Blocked initial partition: worker w owns [w*len/T, (w+1)*len/T).
    let deques: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((w * len / threads..(w + 1) * len / threads).collect()))
        .collect();
    let (deques, f) = (&deques, &f);

    let mut tagged: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(idx) = next_task(deques, w) {
                        local.push((idx, f(idx)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon shim worker panicked"))
            .collect()
    });
    tagged.sort_unstable_by_key(|&(idx, _)| idx);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// Error building a [`ThreadPool`] (kept for API parity; the shim builder
/// cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; rayon treats `0` as "use the default".
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = (n > 0).then_some(n);
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { threads: self.num_threads.unwrap_or_else(current_num_threads) })
    }
}

/// A configured worker-count context. Workers are spawned per parallel
/// call, so the pool itself holds no threads — only the count that
/// parallel calls under [`ThreadPool::install`] will use.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }

    /// Runs `op` with parallel calls inside it using this pool's worker
    /// count.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let prev = INSTALLED_THREADS.with(|t| t.replace(Some(self.threads)));
        let out = op();
        INSTALLED_THREADS.with(|t| t.set(prev));
        out
    }
}

/// A parallel iterator over `&[T]`.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps each item through `f` (executed when the chain is collected).
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'data T) + Sync,
    {
        let items = self.items;
        run_indexed(items.len(), current_num_threads(), |i| f(&items[i]));
    }
}

/// A mapped parallel iterator; consumed by [`ParMap::collect`].
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Executes the map with work stealing and collects the results in
    /// input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let (items, f) = (self.items, &self.f);
        run_indexed(items.len(), current_num_threads(), |i| f(&items[i]))
            .into_iter()
            .collect()
    }
}

/// Borrowing conversion into a parallel iterator (the slice of rayon's
/// `IntoParallelRefIterator` this workspace uses).
pub trait IntoParallelRefIterator<'data> {
    /// Item type yielded by reference.
    type Item: Sync + 'data;

    /// Returns a parallel iterator over `&self`'s items.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// The import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn indexed_map_preserves_order_at_any_width() {
        for threads in [1, 2, 3, 8, 64] {
            let out = run_indexed(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn each_index_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
        run_indexed(200, 8, |i| hits[i].fetch_add(1, Ordering::Relaxed));
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn skewed_work_is_stolen() {
        // One worker's initial block holds all the slow tasks; without
        // stealing the run would serialise behind it.
        let slow_done = AtomicUsize::new(0);
        let out = run_indexed(16, 4, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
                slow_done.fetch_add(1, Ordering::Relaxed);
            }
            i
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
        assert_eq!(slow_done.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn par_iter_map_collect_matches_serial() {
        let items: Vec<u64> = (0..57).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        // The override does not leak past install.
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool1.install(current_num_threads), 1);
    }

    #[test]
    fn zero_threads_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = run_indexed(0, 8, |_| unreachable!());
        assert!(out.is_empty());
    }
}
