//! Derive macros for the vendored `serde` shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). The parser understands the subset of
//! Rust item grammar this workspace uses: structs with named fields,
//! tuple structs, unit structs, and enums whose variants are unit, tuple,
//! or struct-like; plain type parameters (`struct Foo<T> { .. }`) are
//! supported and receive the derived trait as a bound.
//!
//! `#[serde(...)]` helper attributes are accepted and ignored — the shim
//! always derives the default field-by-name representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a struct's (or enum variant's) fields.
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    type_params: Vec<String>,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let head = impl_header(&parsed, "serde::Serialize");
    let body = match &parsed.body {
        Body::Struct(fields) => serialize_struct_body(&parsed.name, fields),
        Body::Enum(variants) => serialize_enum_body(&parsed.name, variants),
    };
    let code = format!(
        "{head} {{\n fn to_value(&self) -> serde::Value {{\n {body}\n }}\n}}\n"
    );
    code.parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let head = impl_header(&parsed, "serde::Deserialize");
    let body = match &parsed.body {
        Body::Struct(fields) => deserialize_struct_body(&parsed.name, fields),
        Body::Enum(variants) => deserialize_enum_body(&parsed.name, variants),
    };
    let code = format!(
        "{head} {{\n fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::DeError> {{\n {body}\n }}\n}}\n"
    );
    code.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(input: &Input, trait_path: &str) -> String {
    if input.type_params.is_empty() {
        format!("impl {trait_path} for {}", input.name)
    } else {
        let bounded: Vec<String> = input
            .type_params
            .iter()
            .map(|p| format!("{p}: {trait_path}"))
            .collect();
        let plain = input.type_params.join(", ");
        format!(
            "impl<{}> {trait_path} for {}<{plain}>",
            bounded.join(", "),
            input.name
        )
    }
}

fn serialize_fields_named(names: &[String], access_prefix: &str) -> String {
    let pairs: Vec<String> = names
        .iter()
        .map(|n| {
            format!(
                "(std::string::String::from(\"{n}\"), serde::Serialize::to_value(&{access_prefix}{n}))"
            )
        })
        .collect();
    format!("serde::Value::Obj(std::vec![{}])", pairs.join(", "))
}

fn serialize_struct_body(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "serde::Value::Null".to_string(),
        Fields::Named(names) => serialize_fields_named(names, "self."),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Arr(std::vec![{}])", items.join(", "))
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => arms.push(format!(
                "{name}::{vn} => serde::Value::Str(std::string::String::from(\"{vn}\")),"
            )),
            Fields::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("serde::Serialize::to_value({b})"))
                    .collect();
                arms.push(format!(
                    "{name}::{vn}({}) => serde::Value::Obj(std::vec![(std::string::String::from(\"{vn}\"), serde::Value::Arr(std::vec![{}]))]),",
                    binds.join(", "),
                    items.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let inner = serialize_fields_named(fields, "");
                arms.push(format!(
                    "{name}::{vn} {{ {} }} => serde::Value::Obj(std::vec![(std::string::String::from(\"{vn}\"), {inner})]),",
                    fields.join(", ")
                ));
            }
        }
    }
    format!("match self {{\n{}\n}}", arms.join("\n"))
}

fn deserialize_fields_named(names: &[String]) -> String {
    let inits: Vec<String> = names
        .iter()
        .map(|n| format!("{n}: serde::field(v, \"{n}\")?"))
        .collect();
    inits.join(", ")
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("std::result::Result::Ok({name})"),
        Fields::Named(names) => {
            let inits = deserialize_fields_named(names);
            format!(
                "if v.as_obj().is_none() {{ return std::result::Result::Err(serde::DeError::msg(\"expected object for struct {name}\")); }}\n\
                 std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n).map(|i| format!("serde::element(v, {i})?")).collect();
            format!("std::result::Result::Ok({name}({}))", inits.join(", "))
        }
    }
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut data_arms = Vec::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => unit_arms.push(format!(
                "\"{vn}\" => std::result::Result::Ok({name}::{vn}),"
            )),
            Fields::Tuple(n) => {
                let inits: Vec<String> =
                    (0..*n).map(|i| format!("serde::element(inner, {i})?")).collect();
                data_arms.push(format!(
                    "\"{vn}\" => std::result::Result::Ok({name}::{vn}({})),",
                    inits.join(", ")
                ));
            }
            Fields::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: serde::field(inner, \"{f}\")?"))
                    .collect();
                data_arms.push(format!(
                    "\"{vn}\" => std::result::Result::Ok({name}::{vn} {{ {} }}),",
                    inits.join(", ")
                ));
            }
        }
    }
    format!(
        "match v {{\n\
           serde::Value::Str(s) => match s.as_str() {{\n{units}\n_ => std::result::Result::Err(serde::DeError::msg(\"unknown variant of {name}\")), }},\n\
           serde::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
             let (tag, inner) = &pairs[0];\n\
             match tag.as_str() {{\n{datas}\n_ => std::result::Result::Err(serde::DeError::msg(\"unknown variant of {name}\")), }}\n\
           }},\n\
           _ => std::result::Result::Err(serde::DeError::msg(\"expected variant of {name}\")),\n\
         }}",
        units = unit_arms.join("\n"),
        datas = data_arms.join("\n"),
    )
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;

    let type_params = parse_generics(&tokens, &mut i);

    match kind.as_str() {
        "struct" => {
            // The body is the next group: braces (named), parens (tuple),
            // or absent entirely (unit struct, `struct Foo;`). A where
            // clause may precede a brace body.
            let fields = loop {
                match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        break parse_named_fields(g.stream());
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        break Fields::Tuple(count_tuple_fields(g.stream()));
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => break Fields::Unit,
                    Some(_) => i += 1,
                    None => break Fields::Unit,
                }
            };
            Input { name, type_params, body: Body::Struct(fields) }
        }
        "enum" => {
            let group = loop {
                match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
                    Some(_) => i += 1,
                    None => panic!("enum `{name}` has no body"),
                }
            };
            Input { name, type_params, body: Body::Enum(parse_variants(group.stream())) }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Skips `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // (crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Parses `<...>` after the item name, returning the type-parameter names.
/// Lifetimes and const parameters are rejected (unused in this workspace).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut at_param_start = true;
    while depth > 0 {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                at_param_start = true;
                *i += 1;
                continue;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                panic!("serde shim derive does not support lifetime parameters")
            }
            Some(TokenTree::Ident(id)) if at_param_start => {
                let s = id.to_string();
                if s == "const" {
                    panic!("serde shim derive does not support const parameters");
                }
                params.push(s);
                at_param_start = false;
            }
            Some(_) => {}
            None => panic!("unterminated generics"),
        }
        *i += 1;
    }
    params
}

/// Parses `{ a: T, pub b: U, .. }` into field names, skipping types.
fn parse_named_fields(stream: TokenStream) -> Fields {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        names.push(id.to_string());
        i += 1;
        // Expect ':' then skip the type up to a top-level ','.
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Fields::Named(names)
}

/// Counts top-level comma-separated entries in a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut saw_tokens_since_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

/// Parses enum variants: `Unit, Tuple(T, U), Struct { a: T },`.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}
