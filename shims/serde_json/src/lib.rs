//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` shim's [`serde::Value`] tree to JSON text
//! and parses it back. Supports the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null); numbers parse to
//! `U64`/`I64` when integral and `F64` otherwise. Non-finite floats render
//! as `null`, matching `serde_json`'s lossy default.

use serde::{DeError, Deserialize, Serialize, Value};

/// Error returned by [`from_str`] / [`to_string_pretty`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable, indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    // Keep a decimal point so the value re-parses as F64.
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), items.len(), indent, depth, '[', ']', |out, item, indent, depth| {
            write_value(out, item, indent, depth);
        }),
        Value::Obj(pairs) => write_seq(out, pairs.iter(), pairs.len(), indent, depth, '{', '}', |out, (k, val), indent, depth| {
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, val, indent, depth);
        }),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I, F>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<&str>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: Iterator,
    F: FnMut(&mut String, I::Item, Option<&str>, usize),
{
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte aware).
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| Error::msg("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<u64>(&to_string(&42u64).unwrap()).unwrap(), 42);
        assert_eq!(from_str::<f64>(&to_string(&1.25f64).unwrap()).unwrap(), 1.25);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![1u64, 2, 3];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<u64>>(&s).unwrap(), v);
    }

    #[test]
    fn integral_floats_keep_their_type() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 2.0);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("{not json").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<u64>("42 trailing").is_err());
    }

    #[test]
    fn nested_object_parses() {
        let v: Value = parse_value_complete("{\"a\": [1, 2.5, null], \"b\": {\"c\": \"x\"}}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str().unwrap(), "x");
    }
}
