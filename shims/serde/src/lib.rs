//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace vendors
//! a minimal self-consistent serialization framework under the `serde`
//! name: a JSON-shaped [`Value`] tree, [`Serialize`]/[`Deserialize`]
//! traits that convert to and from it, and derive macros (re-exported
//! from the sibling `serde_derive` shim) that generate the conversions
//! for structs and enums. `serde_json` (also vendored) renders [`Value`]
//! to JSON text and parses it back.
//!
//! The wire format is self-consistent (everything this shim writes it can
//! read back) but intentionally *not* byte-compatible with upstream serde
//! — nothing in this repository exchanges JSON with the outside world.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Arc;

/// A JSON-shaped document tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (printed without a decimal point).
    U64(u64),
    /// A signed integer (printed without a decimal point).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object: ordered key/value pairs (insertion order preserved).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Converts a value into the document tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstructs a value from the document tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up and deserializes a required object field (derive helper).
pub fn field<T: Deserialize>(v: &Value, key: &str) -> Result<T, DeError> {
    match v.get(key) {
        Some(inner) => T::from_value(inner)
            .map_err(|e| DeError(format!("field `{key}`: {}", e.0))),
        None => Err(DeError(format!("missing field `{key}`"))),
    }
}

/// Deserializes element `i` of an array value (derive helper).
pub fn element<T: Deserialize>(v: &Value, i: usize) -> Result<T, DeError> {
    match v.as_arr().and_then(|a| a.get(i)) {
        Some(inner) => T::from_value(inner)
            .map_err(|e| DeError(format!("element {i}: {}", e.0))),
        None => Err(DeError(format!("missing array element {i}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    _ => return Err(DeError::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => f as i64,
                    _ => return Err(DeError::msg(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

// 128-bit integers don't fit JSON numbers; render as decimal strings when
// they exceed the 64-bit range.
impl Serialize for u128 {
    fn to_value(&self) -> Value {
        match u64::try_from(*self) {
            Ok(n) => Value::U64(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::U64(n) => Ok(u128::from(*n)),
            Value::I64(n) if *n >= 0 => Ok(*n as u128),
            Value::Str(s) => s.parse().map_err(|_| DeError::msg("bad u128 string")),
            _ => Err(DeError::msg("expected u128")),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) => Value::I64(n),
            Err(_) => Value::Str(self.to_string()),
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::U64(n) => Ok(i128::from(*n)),
            Value::I64(n) => Ok(i128::from(*n)),
            Value::Str(s) => s.parse().map_err(|_| DeError::msg("bad i128 string")),
            _ => Err(DeError::msg("expected i128")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            _ => Err(DeError::msg("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_string).ok_or_else(|| DeError::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::msg("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_arr()
            .ok_or_else(|| DeError::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let got = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, got {got}")))
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $ix:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$ix.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                Ok(($(element::<$name>(v, $ix)?,)+))
            }
        }
    )*};
}

ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Maps serialize as arrays of `[key, value]` pairs (keys are not
/// restricted to strings), sorted by the key's rendered form so output is
/// deterministic regardless of hash order.
fn map_to_value<'a, K, V, I>(iter: I) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<(String, Value)> = iter
        .map(|(k, v)| (format!("{:?}", k.to_value()), Value::Arr(vec![k.to_value(), v.to_value()])))
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    Value::Arr(pairs.into_iter().map(|(_, v)| v).collect())
}

fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    v.as_arr()
        .ok_or_else(|| DeError::msg("expected map as array of pairs"))?
        .iter()
        .map(|pair| Ok((element::<K>(pair, 0)?, element::<V>(pair, 1)?)))
        .collect()
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let a = [1u8, 2, 3];
        assert_eq!(<[u8; 3]>::from_value(&a.to_value()).unwrap(), a);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
        let t = (1u32, 2.5f64);
        assert_eq!(<(u32, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn maps_roundtrip_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u64);
        m.insert("a".to_string(), 1u64);
        let val = m.to_value();
        let back: HashMap<String, u64> = HashMap::from_value(&val).unwrap();
        assert_eq!(back, m);
        // Deterministic ordering regardless of hash order.
        assert_eq!(val, m.clone().to_value());
    }

    #[test]
    fn missing_fields_error() {
        let obj = Value::Obj(vec![]);
        assert!(field::<u64>(&obj, "missing").is_err());
    }
}
