//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `parking_lot` API it uses — `Mutex` and
//! `RwLock` with panic-free, non-poisoning lock methods — implemented on
//! top of `std::sync`. Poisoning is deliberately swallowed: a panicking
//! simulator thread should not cascade lock poison into unrelated tests.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
