//! Facade crate re-exporting the full Ditto reproduction API.
//!
//! See the individual crates for details:
//! - [`sim`] — discrete-event simulation engine and statistics
//! - [`hw`] — hardware timing models and platform specs
//! - [`kernel`] — simulated operating system
//! - [`trace`] — distributed tracing
//! - [`app`] — original application models
//! - [`profile`] — profiling substrate
//! - [`core`] — the Ditto cloning pipeline
//! - [`workload`] — load generators
pub use ditto_app as app;
pub use ditto_core as core;
pub use ditto_hw as hw;
pub use ditto_kernel as kernel;
pub use ditto_profile as profile;
pub use ditto_sim as sim;
pub use ditto_trace as trace;
pub use ditto_workload as workload;
