/root/repo/target/release/deps/ditto_trace-ae7cb0a0465df16b.d: crates/trace/src/lib.rs crates/trace/src/graph.rs crates/trace/src/span.rs

/root/repo/target/release/deps/ditto_trace-ae7cb0a0465df16b: crates/trace/src/lib.rs crates/trace/src/graph.rs crates/trace/src/span.rs

crates/trace/src/lib.rs:
crates/trace/src/graph.rs:
crates/trace/src/span.rs:
