/root/repo/target/release/deps/ditto-84f8b58edae789c7.d: src/lib.rs

/root/repo/target/release/deps/libditto-84f8b58edae789c7.rlib: src/lib.rs

/root/repo/target/release/deps/libditto-84f8b58edae789c7.rmeta: src/lib.rs

src/lib.rs:
