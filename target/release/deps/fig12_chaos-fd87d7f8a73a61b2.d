/root/repo/target/release/deps/fig12_chaos-fd87d7f8a73a61b2.d: crates/bench/benches/fig12_chaos.rs

/root/repo/target/release/deps/fig12_chaos-fd87d7f8a73a61b2: crates/bench/benches/fig12_chaos.rs

crates/bench/benches/fig12_chaos.rs:
