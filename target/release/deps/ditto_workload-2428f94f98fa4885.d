/root/repo/target/release/deps/ditto_workload-2428f94f98fa4885.d: crates/workload/src/lib.rs crates/workload/src/closed_loop.rs crates/workload/src/open_loop.rs crates/workload/src/recorder.rs

/root/repo/target/release/deps/libditto_workload-2428f94f98fa4885.rlib: crates/workload/src/lib.rs crates/workload/src/closed_loop.rs crates/workload/src/open_loop.rs crates/workload/src/recorder.rs

/root/repo/target/release/deps/libditto_workload-2428f94f98fa4885.rmeta: crates/workload/src/lib.rs crates/workload/src/closed_loop.rs crates/workload/src/open_loop.rs crates/workload/src/recorder.rs

crates/workload/src/lib.rs:
crates/workload/src/closed_loop.rs:
crates/workload/src/open_loop.rs:
crates/workload/src/recorder.rs:
