/root/repo/target/release/deps/ditto_sim-6db402779c22850a.d: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/quant.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libditto_sim-6db402779c22850a.rlib: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/quant.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/release/deps/libditto_sim-6db402779c22850a.rmeta: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/quant.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/quant.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
