/root/repo/target/release/deps/ditto_kernel-22f9e922762fd8c0.d: crates/kernel/src/lib.rs crates/kernel/src/cluster.rs crates/kernel/src/fault.rs crates/kernel/src/fs.rs crates/kernel/src/ids.rs crates/kernel/src/kcode.rs crates/kernel/src/lru.rs crates/kernel/src/machine.rs crates/kernel/src/net.rs crates/kernel/src/probe.rs crates/kernel/src/thread.rs

/root/repo/target/release/deps/ditto_kernel-22f9e922762fd8c0: crates/kernel/src/lib.rs crates/kernel/src/cluster.rs crates/kernel/src/fault.rs crates/kernel/src/fs.rs crates/kernel/src/ids.rs crates/kernel/src/kcode.rs crates/kernel/src/lru.rs crates/kernel/src/machine.rs crates/kernel/src/net.rs crates/kernel/src/probe.rs crates/kernel/src/thread.rs

crates/kernel/src/lib.rs:
crates/kernel/src/cluster.rs:
crates/kernel/src/fault.rs:
crates/kernel/src/fs.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/kcode.rs:
crates/kernel/src/lru.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/net.rs:
crates/kernel/src/probe.rs:
crates/kernel/src/thread.rs:
