/root/repo/target/release/deps/ditto_profile-8446599768930762.d: crates/profile/src/lib.rs crates/profile/src/hierarchy.rs crates/profile/src/instr_profile.rs crates/profile/src/metrics.rs crates/profile/src/profile.rs crates/profile/src/stackdist.rs crates/profile/src/syscall_profile.rs crates/profile/src/thread_model.rs

/root/repo/target/release/deps/libditto_profile-8446599768930762.rlib: crates/profile/src/lib.rs crates/profile/src/hierarchy.rs crates/profile/src/instr_profile.rs crates/profile/src/metrics.rs crates/profile/src/profile.rs crates/profile/src/stackdist.rs crates/profile/src/syscall_profile.rs crates/profile/src/thread_model.rs

/root/repo/target/release/deps/libditto_profile-8446599768930762.rmeta: crates/profile/src/lib.rs crates/profile/src/hierarchy.rs crates/profile/src/instr_profile.rs crates/profile/src/metrics.rs crates/profile/src/profile.rs crates/profile/src/stackdist.rs crates/profile/src/syscall_profile.rs crates/profile/src/thread_model.rs

crates/profile/src/lib.rs:
crates/profile/src/hierarchy.rs:
crates/profile/src/instr_profile.rs:
crates/profile/src/metrics.rs:
crates/profile/src/profile.rs:
crates/profile/src/stackdist.rs:
crates/profile/src/syscall_profile.rs:
crates/profile/src/thread_model.rs:
