/root/repo/target/release/deps/ditto_trace-df5fe5735bf22c3b.d: crates/trace/src/lib.rs crates/trace/src/graph.rs crates/trace/src/span.rs

/root/repo/target/release/deps/libditto_trace-df5fe5735bf22c3b.rlib: crates/trace/src/lib.rs crates/trace/src/graph.rs crates/trace/src/span.rs

/root/repo/target/release/deps/libditto_trace-df5fe5735bf22c3b.rmeta: crates/trace/src/lib.rs crates/trace/src/graph.rs crates/trace/src/span.rs

crates/trace/src/lib.rs:
crates/trace/src/graph.rs:
crates/trace/src/span.rs:
