/root/repo/target/release/deps/ditto_workload-aa21c04701856971.d: crates/workload/src/lib.rs crates/workload/src/closed_loop.rs crates/workload/src/open_loop.rs crates/workload/src/recorder.rs

/root/repo/target/release/deps/ditto_workload-aa21c04701856971: crates/workload/src/lib.rs crates/workload/src/closed_loop.rs crates/workload/src/open_loop.rs crates/workload/src/recorder.rs

crates/workload/src/lib.rs:
crates/workload/src/closed_loop.rs:
crates/workload/src/open_loop.rs:
crates/workload/src/recorder.rs:
