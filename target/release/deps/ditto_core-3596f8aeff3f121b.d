/root/repo/target/release/deps/ditto_core-3596f8aeff3f121b.d: crates/core/src/lib.rs crates/core/src/body_gen.rs crates/core/src/clone.rs crates/core/src/harness.rs crates/core/src/skeleton.rs crates/core/src/stages.rs crates/core/src/tuner.rs

/root/repo/target/release/deps/libditto_core-3596f8aeff3f121b.rlib: crates/core/src/lib.rs crates/core/src/body_gen.rs crates/core/src/clone.rs crates/core/src/harness.rs crates/core/src/skeleton.rs crates/core/src/stages.rs crates/core/src/tuner.rs

/root/repo/target/release/deps/libditto_core-3596f8aeff3f121b.rmeta: crates/core/src/lib.rs crates/core/src/body_gen.rs crates/core/src/clone.rs crates/core/src/harness.rs crates/core/src/skeleton.rs crates/core/src/stages.rs crates/core/src/tuner.rs

crates/core/src/lib.rs:
crates/core/src/body_gen.rs:
crates/core/src/clone.rs:
crates/core/src/harness.rs:
crates/core/src/skeleton.rs:
crates/core/src/stages.rs:
crates/core/src/tuner.rs:
