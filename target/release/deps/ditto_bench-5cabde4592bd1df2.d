/root/repo/target/release/deps/ditto_bench-5cabde4592bd1df2.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/social_experiment.rs

/root/repo/target/release/deps/libditto_bench-5cabde4592bd1df2.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/social_experiment.rs

/root/repo/target/release/deps/libditto_bench-5cabde4592bd1df2.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/social_experiment.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/social_experiment.rs:
