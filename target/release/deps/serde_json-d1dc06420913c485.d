/root/repo/target/release/deps/serde_json-d1dc06420913c485.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-d1dc06420913c485.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-d1dc06420913c485.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
