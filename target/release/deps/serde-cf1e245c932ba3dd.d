/root/repo/target/release/deps/serde-cf1e245c932ba3dd.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-cf1e245c932ba3dd.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-cf1e245c932ba3dd.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
