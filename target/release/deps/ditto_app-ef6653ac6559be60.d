/root/repo/target/release/deps/ditto_app-ef6653ac6559be60.d: crates/app/src/lib.rs crates/app/src/apps.rs crates/app/src/handlers.rs crates/app/src/resilience.rs crates/app/src/service.rs crates/app/src/social.rs crates/app/src/stressors.rs

/root/repo/target/release/deps/libditto_app-ef6653ac6559be60.rlib: crates/app/src/lib.rs crates/app/src/apps.rs crates/app/src/handlers.rs crates/app/src/resilience.rs crates/app/src/service.rs crates/app/src/social.rs crates/app/src/stressors.rs

/root/repo/target/release/deps/libditto_app-ef6653ac6559be60.rmeta: crates/app/src/lib.rs crates/app/src/apps.rs crates/app/src/handlers.rs crates/app/src/resilience.rs crates/app/src/service.rs crates/app/src/social.rs crates/app/src/stressors.rs

crates/app/src/lib.rs:
crates/app/src/apps.rs:
crates/app/src/handlers.rs:
crates/app/src/resilience.rs:
crates/app/src/service.rs:
crates/app/src/social.rs:
crates/app/src/stressors.rs:
