/root/repo/target/release/deps/ditto_app-65291eda3c7483ec.d: crates/app/src/lib.rs crates/app/src/apps.rs crates/app/src/handlers.rs crates/app/src/resilience.rs crates/app/src/service.rs crates/app/src/social.rs crates/app/src/stressors.rs

/root/repo/target/release/deps/ditto_app-65291eda3c7483ec: crates/app/src/lib.rs crates/app/src/apps.rs crates/app/src/handlers.rs crates/app/src/resilience.rs crates/app/src/service.rs crates/app/src/social.rs crates/app/src/stressors.rs

crates/app/src/lib.rs:
crates/app/src/apps.rs:
crates/app/src/handlers.rs:
crates/app/src/resilience.rs:
crates/app/src/service.rs:
crates/app/src/social.rs:
crates/app/src/stressors.rs:
