/root/repo/target/release/deps/ditto_hw-89fed8ccd79b6903.d: crates/hw/src/lib.rs crates/hw/src/branch.rs crates/hw/src/cache.rs crates/hw/src/codegen.rs crates/hw/src/core_model.rs crates/hw/src/counters.rs crates/hw/src/device.rs crates/hw/src/isa.rs crates/hw/src/platform.rs

/root/repo/target/release/deps/libditto_hw-89fed8ccd79b6903.rlib: crates/hw/src/lib.rs crates/hw/src/branch.rs crates/hw/src/cache.rs crates/hw/src/codegen.rs crates/hw/src/core_model.rs crates/hw/src/counters.rs crates/hw/src/device.rs crates/hw/src/isa.rs crates/hw/src/platform.rs

/root/repo/target/release/deps/libditto_hw-89fed8ccd79b6903.rmeta: crates/hw/src/lib.rs crates/hw/src/branch.rs crates/hw/src/cache.rs crates/hw/src/codegen.rs crates/hw/src/core_model.rs crates/hw/src/counters.rs crates/hw/src/device.rs crates/hw/src/isa.rs crates/hw/src/platform.rs

crates/hw/src/lib.rs:
crates/hw/src/branch.rs:
crates/hw/src/cache.rs:
crates/hw/src/codegen.rs:
crates/hw/src/core_model.rs:
crates/hw/src/counters.rs:
crates/hw/src/device.rs:
crates/hw/src/isa.rs:
crates/hw/src/platform.rs:
