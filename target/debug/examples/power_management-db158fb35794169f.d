/root/repo/target/debug/examples/power_management-db158fb35794169f.d: examples/power_management.rs Cargo.toml

/root/repo/target/debug/examples/libpower_management-db158fb35794169f.rmeta: examples/power_management.rs Cargo.toml

examples/power_management.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
