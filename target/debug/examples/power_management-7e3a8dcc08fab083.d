/root/repo/target/debug/examples/power_management-7e3a8dcc08fab083.d: examples/power_management.rs

/root/repo/target/debug/examples/power_management-7e3a8dcc08fab083: examples/power_management.rs

examples/power_management.rs:
