/root/repo/target/debug/examples/clone_social_network-c5c578e7ac29f080.d: examples/clone_social_network.rs Cargo.toml

/root/repo/target/debug/examples/libclone_social_network-c5c578e7ac29f080.rmeta: examples/clone_social_network.rs Cargo.toml

examples/clone_social_network.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
