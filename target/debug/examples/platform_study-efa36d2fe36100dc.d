/root/repo/target/debug/examples/platform_study-efa36d2fe36100dc.d: examples/platform_study.rs Cargo.toml

/root/repo/target/debug/examples/libplatform_study-efa36d2fe36100dc.rmeta: examples/platform_study.rs Cargo.toml

examples/platform_study.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
