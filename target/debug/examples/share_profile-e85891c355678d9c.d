/root/repo/target/debug/examples/share_profile-e85891c355678d9c.d: examples/share_profile.rs Cargo.toml

/root/repo/target/debug/examples/libshare_profile-e85891c355678d9c.rmeta: examples/share_profile.rs Cargo.toml

examples/share_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
