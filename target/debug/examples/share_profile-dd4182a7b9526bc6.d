/root/repo/target/debug/examples/share_profile-dd4182a7b9526bc6.d: examples/share_profile.rs

/root/repo/target/debug/examples/share_profile-dd4182a7b9526bc6: examples/share_profile.rs

examples/share_profile.rs:
