/root/repo/target/debug/examples/clone_social_network-9352e2b51807165c.d: examples/clone_social_network.rs

/root/repo/target/debug/examples/clone_social_network-9352e2b51807165c: examples/clone_social_network.rs

examples/clone_social_network.rs:
