/root/repo/target/debug/examples/quickstart-d6eb2f4fb3384987.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d6eb2f4fb3384987: examples/quickstart.rs

examples/quickstart.rs:
