/root/repo/target/debug/examples/platform_study-2779f1ccbeebd98a.d: examples/platform_study.rs

/root/repo/target/debug/examples/platform_study-2779f1ccbeebd98a: examples/platform_study.rs

examples/platform_study.rs:
