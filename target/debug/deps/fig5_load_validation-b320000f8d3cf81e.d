/root/repo/target/debug/deps/fig5_load_validation-b320000f8d3cf81e.d: crates/bench/benches/fig5_load_validation.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_load_validation-b320000f8d3cf81e.rmeta: crates/bench/benches/fig5_load_validation.rs Cargo.toml

crates/bench/benches/fig5_load_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
