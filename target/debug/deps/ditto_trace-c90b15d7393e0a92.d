/root/repo/target/debug/deps/ditto_trace-c90b15d7393e0a92.d: crates/trace/src/lib.rs crates/trace/src/graph.rs crates/trace/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libditto_trace-c90b15d7393e0a92.rmeta: crates/trace/src/lib.rs crates/trace/src/graph.rs crates/trace/src/span.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/graph.rs:
crates/trace/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
