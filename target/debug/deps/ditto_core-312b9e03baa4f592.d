/root/repo/target/debug/deps/ditto_core-312b9e03baa4f592.d: crates/core/src/lib.rs crates/core/src/body_gen.rs crates/core/src/clone.rs crates/core/src/harness.rs crates/core/src/skeleton.rs crates/core/src/stages.rs crates/core/src/tuner.rs Cargo.toml

/root/repo/target/debug/deps/libditto_core-312b9e03baa4f592.rmeta: crates/core/src/lib.rs crates/core/src/body_gen.rs crates/core/src/clone.rs crates/core/src/harness.rs crates/core/src/skeleton.rs crates/core/src/stages.rs crates/core/src/tuner.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/body_gen.rs:
crates/core/src/clone.rs:
crates/core/src/harness.rs:
crates/core/src/skeleton.rs:
crates/core/src/stages.rs:
crates/core/src/tuner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
