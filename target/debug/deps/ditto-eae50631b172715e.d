/root/repo/target/debug/deps/ditto-eae50631b172715e.d: src/lib.rs

/root/repo/target/debug/deps/libditto-eae50631b172715e.rlib: src/lib.rs

/root/repo/target/debug/deps/libditto-eae50631b172715e.rmeta: src/lib.rs

src/lib.rs:
