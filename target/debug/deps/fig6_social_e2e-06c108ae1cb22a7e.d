/root/repo/target/debug/deps/fig6_social_e2e-06c108ae1cb22a7e.d: crates/bench/benches/fig6_social_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_social_e2e-06c108ae1cb22a7e.rmeta: crates/bench/benches/fig6_social_e2e.rs Cargo.toml

crates/bench/benches/fig6_social_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
