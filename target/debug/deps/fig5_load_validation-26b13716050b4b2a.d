/root/repo/target/debug/deps/fig5_load_validation-26b13716050b4b2a.d: crates/bench/benches/fig5_load_validation.rs

/root/repo/target/debug/deps/fig5_load_validation-26b13716050b4b2a: crates/bench/benches/fig5_load_validation.rs

crates/bench/benches/fig5_load_validation.rs:
