/root/repo/target/debug/deps/ditto-10d1c27e97219937.d: src/lib.rs

/root/repo/target/debug/deps/ditto-10d1c27e97219937: src/lib.rs

src/lib.rs:
