/root/repo/target/debug/deps/clone_validation-e0aaedf1527dd57e.d: tests/clone_validation.rs Cargo.toml

/root/repo/target/debug/deps/libclone_validation-e0aaedf1527dd57e.rmeta: tests/clone_validation.rs Cargo.toml

tests/clone_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
