/root/repo/target/debug/deps/ditto_trace-2757b679300ff2cd.d: crates/trace/src/lib.rs crates/trace/src/graph.rs crates/trace/src/span.rs

/root/repo/target/debug/deps/libditto_trace-2757b679300ff2cd.rlib: crates/trace/src/lib.rs crates/trace/src/graph.rs crates/trace/src/span.rs

/root/repo/target/debug/deps/libditto_trace-2757b679300ff2cd.rmeta: crates/trace/src/lib.rs crates/trace/src/graph.rs crates/trace/src/span.rs

crates/trace/src/lib.rs:
crates/trace/src/graph.rs:
crates/trace/src/span.rs:
