/root/repo/target/debug/deps/fig9_decomposition-cdbfea935267b280.d: crates/bench/benches/fig9_decomposition.rs

/root/repo/target/debug/deps/fig9_decomposition-cdbfea935267b280: crates/bench/benches/fig9_decomposition.rs

crates/bench/benches/fig9_decomposition.rs:
