/root/repo/target/debug/deps/ditto_profile-0598ceb810f26dcd.d: crates/profile/src/lib.rs crates/profile/src/hierarchy.rs crates/profile/src/instr_profile.rs crates/profile/src/metrics.rs crates/profile/src/profile.rs crates/profile/src/stackdist.rs crates/profile/src/syscall_profile.rs crates/profile/src/thread_model.rs

/root/repo/target/debug/deps/libditto_profile-0598ceb810f26dcd.rlib: crates/profile/src/lib.rs crates/profile/src/hierarchy.rs crates/profile/src/instr_profile.rs crates/profile/src/metrics.rs crates/profile/src/profile.rs crates/profile/src/stackdist.rs crates/profile/src/syscall_profile.rs crates/profile/src/thread_model.rs

/root/repo/target/debug/deps/libditto_profile-0598ceb810f26dcd.rmeta: crates/profile/src/lib.rs crates/profile/src/hierarchy.rs crates/profile/src/instr_profile.rs crates/profile/src/metrics.rs crates/profile/src/profile.rs crates/profile/src/stackdist.rs crates/profile/src/syscall_profile.rs crates/profile/src/thread_model.rs

crates/profile/src/lib.rs:
crates/profile/src/hierarchy.rs:
crates/profile/src/instr_profile.rs:
crates/profile/src/metrics.rs:
crates/profile/src/profile.rs:
crates/profile/src/stackdist.rs:
crates/profile/src/syscall_profile.rs:
crates/profile/src/thread_model.rs:
