/root/repo/target/debug/deps/ditto_trace-c70b7a5213eb2c39.d: crates/trace/src/lib.rs crates/trace/src/graph.rs crates/trace/src/span.rs Cargo.toml

/root/repo/target/debug/deps/libditto_trace-c70b7a5213eb2c39.rmeta: crates/trace/src/lib.rs crates/trace/src/graph.rs crates/trace/src/span.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/graph.rs:
crates/trace/src/span.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
