/root/repo/target/debug/deps/ditto_bench-fe8adccf0c8fa3f1.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/social_experiment.rs

/root/repo/target/debug/deps/ditto_bench-fe8adccf0c8fa3f1: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/social_experiment.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/social_experiment.rs:
