/root/repo/target/debug/deps/ditto_workload-3c46f6f44a55cb18.d: crates/workload/src/lib.rs crates/workload/src/closed_loop.rs crates/workload/src/open_loop.rs crates/workload/src/recorder.rs

/root/repo/target/debug/deps/ditto_workload-3c46f6f44a55cb18: crates/workload/src/lib.rs crates/workload/src/closed_loop.rs crates/workload/src/open_loop.rs crates/workload/src/recorder.rs

crates/workload/src/lib.rs:
crates/workload/src/closed_loop.rs:
crates/workload/src/open_loop.rs:
crates/workload/src/recorder.rs:
