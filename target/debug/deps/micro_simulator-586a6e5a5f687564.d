/root/repo/target/debug/deps/micro_simulator-586a6e5a5f687564.d: crates/bench/benches/micro_simulator.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_simulator-586a6e5a5f687564.rmeta: crates/bench/benches/micro_simulator.rs Cargo.toml

crates/bench/benches/micro_simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
