/root/repo/target/debug/deps/fig6_social_e2e-528acfcbb204db4d.d: crates/bench/benches/fig6_social_e2e.rs

/root/repo/target/debug/deps/fig6_social_e2e-528acfcbb204db4d: crates/bench/benches/fig6_social_e2e.rs

crates/bench/benches/fig6_social_e2e.rs:
