/root/repo/target/debug/deps/ditto_app-4f8fb6f5ec268c3e.d: crates/app/src/lib.rs crates/app/src/apps.rs crates/app/src/handlers.rs crates/app/src/resilience.rs crates/app/src/service.rs crates/app/src/social.rs crates/app/src/stressors.rs

/root/repo/target/debug/deps/libditto_app-4f8fb6f5ec268c3e.rlib: crates/app/src/lib.rs crates/app/src/apps.rs crates/app/src/handlers.rs crates/app/src/resilience.rs crates/app/src/service.rs crates/app/src/social.rs crates/app/src/stressors.rs

/root/repo/target/debug/deps/libditto_app-4f8fb6f5ec268c3e.rmeta: crates/app/src/lib.rs crates/app/src/apps.rs crates/app/src/handlers.rs crates/app/src/resilience.rs crates/app/src/service.rs crates/app/src/social.rs crates/app/src/stressors.rs

crates/app/src/lib.rs:
crates/app/src/apps.rs:
crates/app/src/handlers.rs:
crates/app/src/resilience.rs:
crates/app/src/service.rs:
crates/app/src/social.rs:
crates/app/src/stressors.rs:
