/root/repo/target/debug/deps/ditto_app-636bb09667660964.d: crates/app/src/lib.rs crates/app/src/apps.rs crates/app/src/handlers.rs crates/app/src/resilience.rs crates/app/src/service.rs crates/app/src/social.rs crates/app/src/stressors.rs

/root/repo/target/debug/deps/ditto_app-636bb09667660964: crates/app/src/lib.rs crates/app/src/apps.rs crates/app/src/handlers.rs crates/app/src/resilience.rs crates/app/src/service.rs crates/app/src/social.rs crates/app/src/stressors.rs

crates/app/src/lib.rs:
crates/app/src/apps.rs:
crates/app/src/handlers.rs:
crates/app/src/resilience.rs:
crates/app/src/service.rs:
crates/app/src/social.rs:
crates/app/src/stressors.rs:
