/root/repo/target/debug/deps/ditto-69bdbeee445300e1.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libditto-69bdbeee445300e1.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
