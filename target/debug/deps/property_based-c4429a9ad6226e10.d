/root/repo/target/debug/deps/property_based-c4429a9ad6226e10.d: tests/property_based.rs

/root/repo/target/debug/deps/property_based-c4429a9ad6226e10: tests/property_based.rs

tests/property_based.rs:
