/root/repo/target/debug/deps/ditto_kernel-b6272b132bdd9d21.d: crates/kernel/src/lib.rs crates/kernel/src/cluster.rs crates/kernel/src/fault.rs crates/kernel/src/fs.rs crates/kernel/src/ids.rs crates/kernel/src/kcode.rs crates/kernel/src/lru.rs crates/kernel/src/machine.rs crates/kernel/src/net.rs crates/kernel/src/probe.rs crates/kernel/src/thread.rs

/root/repo/target/debug/deps/libditto_kernel-b6272b132bdd9d21.rlib: crates/kernel/src/lib.rs crates/kernel/src/cluster.rs crates/kernel/src/fault.rs crates/kernel/src/fs.rs crates/kernel/src/ids.rs crates/kernel/src/kcode.rs crates/kernel/src/lru.rs crates/kernel/src/machine.rs crates/kernel/src/net.rs crates/kernel/src/probe.rs crates/kernel/src/thread.rs

/root/repo/target/debug/deps/libditto_kernel-b6272b132bdd9d21.rmeta: crates/kernel/src/lib.rs crates/kernel/src/cluster.rs crates/kernel/src/fault.rs crates/kernel/src/fs.rs crates/kernel/src/ids.rs crates/kernel/src/kcode.rs crates/kernel/src/lru.rs crates/kernel/src/machine.rs crates/kernel/src/net.rs crates/kernel/src/probe.rs crates/kernel/src/thread.rs

crates/kernel/src/lib.rs:
crates/kernel/src/cluster.rs:
crates/kernel/src/fault.rs:
crates/kernel/src/fs.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/kcode.rs:
crates/kernel/src/lru.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/net.rs:
crates/kernel/src/probe.rs:
crates/kernel/src/thread.rs:
