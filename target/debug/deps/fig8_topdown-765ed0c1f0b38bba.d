/root/repo/target/debug/deps/fig8_topdown-765ed0c1f0b38bba.d: crates/bench/benches/fig8_topdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_topdown-765ed0c1f0b38bba.rmeta: crates/bench/benches/fig8_topdown.rs Cargo.toml

crates/bench/benches/fig8_topdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
