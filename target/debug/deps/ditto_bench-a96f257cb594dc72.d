/root/repo/target/debug/deps/ditto_bench-a96f257cb594dc72.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/social_experiment.rs Cargo.toml

/root/repo/target/debug/deps/libditto_bench-a96f257cb594dc72.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/social_experiment.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/social_experiment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
