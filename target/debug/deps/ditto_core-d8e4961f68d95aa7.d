/root/repo/target/debug/deps/ditto_core-d8e4961f68d95aa7.d: crates/core/src/lib.rs crates/core/src/body_gen.rs crates/core/src/clone.rs crates/core/src/harness.rs crates/core/src/skeleton.rs crates/core/src/stages.rs crates/core/src/tuner.rs

/root/repo/target/debug/deps/ditto_core-d8e4961f68d95aa7: crates/core/src/lib.rs crates/core/src/body_gen.rs crates/core/src/clone.rs crates/core/src/harness.rs crates/core/src/skeleton.rs crates/core/src/stages.rs crates/core/src/tuner.rs

crates/core/src/lib.rs:
crates/core/src/body_gen.rs:
crates/core/src/clone.rs:
crates/core/src/harness.rs:
crates/core/src/skeleton.rs:
crates/core/src/stages.rs:
crates/core/src/tuner.rs:
