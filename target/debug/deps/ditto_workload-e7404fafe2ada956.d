/root/repo/target/debug/deps/ditto_workload-e7404fafe2ada956.d: crates/workload/src/lib.rs crates/workload/src/closed_loop.rs crates/workload/src/open_loop.rs crates/workload/src/recorder.rs

/root/repo/target/debug/deps/libditto_workload-e7404fafe2ada956.rlib: crates/workload/src/lib.rs crates/workload/src/closed_loop.rs crates/workload/src/open_loop.rs crates/workload/src/recorder.rs

/root/repo/target/debug/deps/libditto_workload-e7404fafe2ada956.rmeta: crates/workload/src/lib.rs crates/workload/src/closed_loop.rs crates/workload/src/open_loop.rs crates/workload/src/recorder.rs

crates/workload/src/lib.rs:
crates/workload/src/closed_loop.rs:
crates/workload/src/open_loop.rs:
crates/workload/src/recorder.rs:
