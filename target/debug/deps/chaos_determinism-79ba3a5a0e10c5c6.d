/root/repo/target/debug/deps/chaos_determinism-79ba3a5a0e10c5c6.d: tests/chaos_determinism.rs

/root/repo/target/debug/deps/chaos_determinism-79ba3a5a0e10c5c6: tests/chaos_determinism.rs

tests/chaos_determinism.rs:
