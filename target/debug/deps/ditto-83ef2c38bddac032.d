/root/repo/target/debug/deps/ditto-83ef2c38bddac032.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libditto-83ef2c38bddac032.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
