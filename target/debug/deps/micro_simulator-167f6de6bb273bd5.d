/root/repo/target/debug/deps/micro_simulator-167f6de6bb273bd5.d: crates/bench/benches/micro_simulator.rs

/root/repo/target/debug/deps/micro_simulator-167f6de6bb273bd5: crates/bench/benches/micro_simulator.rs

crates/bench/benches/micro_simulator.rs:
