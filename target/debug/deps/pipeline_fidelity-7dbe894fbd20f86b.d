/root/repo/target/debug/deps/pipeline_fidelity-7dbe894fbd20f86b.d: tests/pipeline_fidelity.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline_fidelity-7dbe894fbd20f86b.rmeta: tests/pipeline_fidelity.rs Cargo.toml

tests/pipeline_fidelity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
