/root/repo/target/debug/deps/ditto_hw-0b00134fcbd633b1.d: crates/hw/src/lib.rs crates/hw/src/branch.rs crates/hw/src/cache.rs crates/hw/src/codegen.rs crates/hw/src/core_model.rs crates/hw/src/counters.rs crates/hw/src/device.rs crates/hw/src/isa.rs crates/hw/src/platform.rs

/root/repo/target/debug/deps/ditto_hw-0b00134fcbd633b1: crates/hw/src/lib.rs crates/hw/src/branch.rs crates/hw/src/cache.rs crates/hw/src/codegen.rs crates/hw/src/core_model.rs crates/hw/src/counters.rs crates/hw/src/device.rs crates/hw/src/isa.rs crates/hw/src/platform.rs

crates/hw/src/lib.rs:
crates/hw/src/branch.rs:
crates/hw/src/cache.rs:
crates/hw/src/codegen.rs:
crates/hw/src/core_model.rs:
crates/hw/src/counters.rs:
crates/hw/src/device.rs:
crates/hw/src/isa.rs:
crates/hw/src/platform.rs:
