/root/repo/target/debug/deps/fig10_interference-58b91837d59cdf9b.d: crates/bench/benches/fig10_interference.rs

/root/repo/target/debug/deps/fig10_interference-58b91837d59cdf9b: crates/bench/benches/fig10_interference.rs

crates/bench/benches/fig10_interference.rs:
