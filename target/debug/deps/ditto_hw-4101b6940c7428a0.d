/root/repo/target/debug/deps/ditto_hw-4101b6940c7428a0.d: crates/hw/src/lib.rs crates/hw/src/branch.rs crates/hw/src/cache.rs crates/hw/src/codegen.rs crates/hw/src/core_model.rs crates/hw/src/counters.rs crates/hw/src/device.rs crates/hw/src/isa.rs crates/hw/src/platform.rs

/root/repo/target/debug/deps/libditto_hw-4101b6940c7428a0.rlib: crates/hw/src/lib.rs crates/hw/src/branch.rs crates/hw/src/cache.rs crates/hw/src/codegen.rs crates/hw/src/core_model.rs crates/hw/src/counters.rs crates/hw/src/device.rs crates/hw/src/isa.rs crates/hw/src/platform.rs

/root/repo/target/debug/deps/libditto_hw-4101b6940c7428a0.rmeta: crates/hw/src/lib.rs crates/hw/src/branch.rs crates/hw/src/cache.rs crates/hw/src/codegen.rs crates/hw/src/core_model.rs crates/hw/src/counters.rs crates/hw/src/device.rs crates/hw/src/isa.rs crates/hw/src/platform.rs

crates/hw/src/lib.rs:
crates/hw/src/branch.rs:
crates/hw/src/cache.rs:
crates/hw/src/codegen.rs:
crates/hw/src/core_model.rs:
crates/hw/src/counters.rs:
crates/hw/src/device.rs:
crates/hw/src/isa.rs:
crates/hw/src/platform.rs:
