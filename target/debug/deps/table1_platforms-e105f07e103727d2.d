/root/repo/target/debug/deps/table1_platforms-e105f07e103727d2.d: crates/bench/benches/table1_platforms.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_platforms-e105f07e103727d2.rmeta: crates/bench/benches/table1_platforms.rs Cargo.toml

crates/bench/benches/table1_platforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
