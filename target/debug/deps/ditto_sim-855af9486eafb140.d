/root/repo/target/debug/deps/ditto_sim-855af9486eafb140.d: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/quant.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libditto_sim-855af9486eafb140.rmeta: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/quant.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/quant.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
