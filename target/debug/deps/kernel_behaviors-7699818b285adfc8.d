/root/repo/target/debug/deps/kernel_behaviors-7699818b285adfc8.d: tests/kernel_behaviors.rs

/root/repo/target/debug/deps/kernel_behaviors-7699818b285adfc8: tests/kernel_behaviors.rs

tests/kernel_behaviors.rs:
