/root/repo/target/debug/deps/ditto_bench-9c5cb64581f9d79b.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/social_experiment.rs

/root/repo/target/debug/deps/libditto_bench-9c5cb64581f9d79b.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/social_experiment.rs

/root/repo/target/debug/deps/libditto_bench-9c5cb64581f9d79b.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/social_experiment.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/social_experiment.rs:
