/root/repo/target/debug/deps/serde-a883de528f35f464.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-a883de528f35f464.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
