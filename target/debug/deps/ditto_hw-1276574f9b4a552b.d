/root/repo/target/debug/deps/ditto_hw-1276574f9b4a552b.d: crates/hw/src/lib.rs crates/hw/src/branch.rs crates/hw/src/cache.rs crates/hw/src/codegen.rs crates/hw/src/core_model.rs crates/hw/src/counters.rs crates/hw/src/device.rs crates/hw/src/isa.rs crates/hw/src/platform.rs Cargo.toml

/root/repo/target/debug/deps/libditto_hw-1276574f9b4a552b.rmeta: crates/hw/src/lib.rs crates/hw/src/branch.rs crates/hw/src/cache.rs crates/hw/src/codegen.rs crates/hw/src/core_model.rs crates/hw/src/counters.rs crates/hw/src/device.rs crates/hw/src/isa.rs crates/hw/src/platform.rs Cargo.toml

crates/hw/src/lib.rs:
crates/hw/src/branch.rs:
crates/hw/src/cache.rs:
crates/hw/src/codegen.rs:
crates/hw/src/core_model.rs:
crates/hw/src/counters.rs:
crates/hw/src/device.rs:
crates/hw/src/isa.rs:
crates/hw/src/platform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
