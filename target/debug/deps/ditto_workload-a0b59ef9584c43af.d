/root/repo/target/debug/deps/ditto_workload-a0b59ef9584c43af.d: crates/workload/src/lib.rs crates/workload/src/closed_loop.rs crates/workload/src/open_loop.rs crates/workload/src/recorder.rs Cargo.toml

/root/repo/target/debug/deps/libditto_workload-a0b59ef9584c43af.rmeta: crates/workload/src/lib.rs crates/workload/src/closed_loop.rs crates/workload/src/open_loop.rs crates/workload/src/recorder.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/closed_loop.rs:
crates/workload/src/open_loop.rs:
crates/workload/src/recorder.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
