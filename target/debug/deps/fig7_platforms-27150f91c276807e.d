/root/repo/target/debug/deps/fig7_platforms-27150f91c276807e.d: crates/bench/benches/fig7_platforms.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_platforms-27150f91c276807e.rmeta: crates/bench/benches/fig7_platforms.rs Cargo.toml

crates/bench/benches/fig7_platforms.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
