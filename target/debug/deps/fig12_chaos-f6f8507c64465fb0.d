/root/repo/target/debug/deps/fig12_chaos-f6f8507c64465fb0.d: crates/bench/benches/fig12_chaos.rs

/root/repo/target/debug/deps/fig12_chaos-f6f8507c64465fb0: crates/bench/benches/fig12_chaos.rs

crates/bench/benches/fig12_chaos.rs:
