/root/repo/target/debug/deps/fig10_interference-61169b66dfee6ff9.d: crates/bench/benches/fig10_interference.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_interference-61169b66dfee6ff9.rmeta: crates/bench/benches/fig10_interference.rs Cargo.toml

crates/bench/benches/fig10_interference.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
