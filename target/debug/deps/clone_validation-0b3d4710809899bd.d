/root/repo/target/debug/deps/clone_validation-0b3d4710809899bd.d: tests/clone_validation.rs

/root/repo/target/debug/deps/clone_validation-0b3d4710809899bd: tests/clone_validation.rs

tests/clone_validation.rs:
