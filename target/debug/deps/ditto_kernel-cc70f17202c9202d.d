/root/repo/target/debug/deps/ditto_kernel-cc70f17202c9202d.d: crates/kernel/src/lib.rs crates/kernel/src/cluster.rs crates/kernel/src/fault.rs crates/kernel/src/fs.rs crates/kernel/src/ids.rs crates/kernel/src/kcode.rs crates/kernel/src/lru.rs crates/kernel/src/machine.rs crates/kernel/src/net.rs crates/kernel/src/probe.rs crates/kernel/src/thread.rs Cargo.toml

/root/repo/target/debug/deps/libditto_kernel-cc70f17202c9202d.rmeta: crates/kernel/src/lib.rs crates/kernel/src/cluster.rs crates/kernel/src/fault.rs crates/kernel/src/fs.rs crates/kernel/src/ids.rs crates/kernel/src/kcode.rs crates/kernel/src/lru.rs crates/kernel/src/machine.rs crates/kernel/src/net.rs crates/kernel/src/probe.rs crates/kernel/src/thread.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/cluster.rs:
crates/kernel/src/fault.rs:
crates/kernel/src/fs.rs:
crates/kernel/src/ids.rs:
crates/kernel/src/kcode.rs:
crates/kernel/src/lru.rs:
crates/kernel/src/machine.rs:
crates/kernel/src/net.rs:
crates/kernel/src/probe.rs:
crates/kernel/src/thread.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
