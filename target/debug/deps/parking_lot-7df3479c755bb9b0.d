/root/repo/target/debug/deps/parking_lot-7df3479c755bb9b0.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-7df3479c755bb9b0.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-7df3479c755bb9b0.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
