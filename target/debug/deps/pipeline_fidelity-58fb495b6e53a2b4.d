/root/repo/target/debug/deps/pipeline_fidelity-58fb495b6e53a2b4.d: tests/pipeline_fidelity.rs

/root/repo/target/debug/deps/pipeline_fidelity-58fb495b6e53a2b4: tests/pipeline_fidelity.rs

tests/pipeline_fidelity.rs:
