/root/repo/target/debug/deps/serde_json-c4f7fe05a546fb81.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c4f7fe05a546fb81.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-c4f7fe05a546fb81.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
