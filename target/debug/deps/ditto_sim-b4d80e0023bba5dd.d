/root/repo/target/debug/deps/ditto_sim-b4d80e0023bba5dd.d: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/quant.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libditto_sim-b4d80e0023bba5dd.rlib: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/quant.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/libditto_sim-b4d80e0023bba5dd.rmeta: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/quant.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/quant.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
