/root/repo/target/debug/deps/table1_platforms-b8a7496a4a72e68b.d: crates/bench/benches/table1_platforms.rs

/root/repo/target/debug/deps/table1_platforms-b8a7496a4a72e68b: crates/bench/benches/table1_platforms.rs

crates/bench/benches/table1_platforms.rs:
