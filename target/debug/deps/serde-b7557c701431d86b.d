/root/repo/target/debug/deps/serde-b7557c701431d86b.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b7557c701431d86b.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-b7557c701431d86b.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
