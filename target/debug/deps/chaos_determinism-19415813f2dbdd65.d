/root/repo/target/debug/deps/chaos_determinism-19415813f2dbdd65.d: tests/chaos_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_determinism-19415813f2dbdd65.rmeta: tests/chaos_determinism.rs Cargo.toml

tests/chaos_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
