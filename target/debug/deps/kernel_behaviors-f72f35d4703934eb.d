/root/repo/target/debug/deps/kernel_behaviors-f72f35d4703934eb.d: tests/kernel_behaviors.rs Cargo.toml

/root/repo/target/debug/deps/libkernel_behaviors-f72f35d4703934eb.rmeta: tests/kernel_behaviors.rs Cargo.toml

tests/kernel_behaviors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
