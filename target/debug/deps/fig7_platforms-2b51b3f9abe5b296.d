/root/repo/target/debug/deps/fig7_platforms-2b51b3f9abe5b296.d: crates/bench/benches/fig7_platforms.rs

/root/repo/target/debug/deps/fig7_platforms-2b51b3f9abe5b296: crates/bench/benches/fig7_platforms.rs

crates/bench/benches/fig7_platforms.rs:
