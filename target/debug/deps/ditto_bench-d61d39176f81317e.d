/root/repo/target/debug/deps/ditto_bench-d61d39176f81317e.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/social_experiment.rs Cargo.toml

/root/repo/target/debug/deps/libditto_bench-d61d39176f81317e.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/social_experiment.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/social_experiment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
