/root/repo/target/debug/deps/ditto_app-fce87eb6f1b573cc.d: crates/app/src/lib.rs crates/app/src/apps.rs crates/app/src/handlers.rs crates/app/src/resilience.rs crates/app/src/service.rs crates/app/src/social.rs crates/app/src/stressors.rs Cargo.toml

/root/repo/target/debug/deps/libditto_app-fce87eb6f1b573cc.rmeta: crates/app/src/lib.rs crates/app/src/apps.rs crates/app/src/handlers.rs crates/app/src/resilience.rs crates/app/src/service.rs crates/app/src/social.rs crates/app/src/stressors.rs Cargo.toml

crates/app/src/lib.rs:
crates/app/src/apps.rs:
crates/app/src/handlers.rs:
crates/app/src/resilience.rs:
crates/app/src/service.rs:
crates/app/src/social.rs:
crates/app/src/stressors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
