/root/repo/target/debug/deps/fig11_power_scaling-646e1ed263395b37.d: crates/bench/benches/fig11_power_scaling.rs

/root/repo/target/debug/deps/fig11_power_scaling-646e1ed263395b37: crates/bench/benches/fig11_power_scaling.rs

crates/bench/benches/fig11_power_scaling.rs:
