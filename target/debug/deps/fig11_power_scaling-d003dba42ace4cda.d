/root/repo/target/debug/deps/fig11_power_scaling-d003dba42ace4cda.d: crates/bench/benches/fig11_power_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_power_scaling-d003dba42ace4cda.rmeta: crates/bench/benches/fig11_power_scaling.rs Cargo.toml

crates/bench/benches/fig11_power_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
