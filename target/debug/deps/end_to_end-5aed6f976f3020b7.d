/root/repo/target/debug/deps/end_to_end-5aed6f976f3020b7.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-5aed6f976f3020b7: tests/end_to_end.rs

tests/end_to_end.rs:
