/root/repo/target/debug/deps/fig8_topdown-8f4b192fba8b23d4.d: crates/bench/benches/fig8_topdown.rs

/root/repo/target/debug/deps/fig8_topdown-8f4b192fba8b23d4: crates/bench/benches/fig8_topdown.rs

crates/bench/benches/fig8_topdown.rs:
