/root/repo/target/debug/deps/ditto_app-74392a15f4f605e5.d: crates/app/src/lib.rs crates/app/src/apps.rs crates/app/src/handlers.rs crates/app/src/resilience.rs crates/app/src/service.rs crates/app/src/social.rs crates/app/src/stressors.rs Cargo.toml

/root/repo/target/debug/deps/libditto_app-74392a15f4f605e5.rmeta: crates/app/src/lib.rs crates/app/src/apps.rs crates/app/src/handlers.rs crates/app/src/resilience.rs crates/app/src/service.rs crates/app/src/social.rs crates/app/src/stressors.rs Cargo.toml

crates/app/src/lib.rs:
crates/app/src/apps.rs:
crates/app/src/handlers.rs:
crates/app/src/resilience.rs:
crates/app/src/service.rs:
crates/app/src/social.rs:
crates/app/src/stressors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
