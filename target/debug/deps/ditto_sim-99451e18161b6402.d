/root/repo/target/debug/deps/ditto_sim-99451e18161b6402.d: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/quant.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

/root/repo/target/debug/deps/ditto_sim-99451e18161b6402: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/quant.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs

crates/sim/src/lib.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/quant.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
