/root/repo/target/debug/deps/ditto_sim-e4bd9d8f96d867f8.d: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/quant.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

/root/repo/target/debug/deps/libditto_sim-e4bd9d8f96d867f8.rmeta: crates/sim/src/lib.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/quant.rs crates/sim/src/rng.rs crates/sim/src/stats.rs crates/sim/src/time.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/quant.rs:
crates/sim/src/rng.rs:
crates/sim/src/stats.rs:
crates/sim/src/time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
