/root/repo/target/debug/deps/fig12_chaos-2ee9038546ddaff6.d: crates/bench/benches/fig12_chaos.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_chaos-2ee9038546ddaff6.rmeta: crates/bench/benches/fig12_chaos.rs Cargo.toml

crates/bench/benches/fig12_chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
