/root/repo/target/debug/deps/ditto_profile-89be4493a7161f96.d: crates/profile/src/lib.rs crates/profile/src/hierarchy.rs crates/profile/src/instr_profile.rs crates/profile/src/metrics.rs crates/profile/src/profile.rs crates/profile/src/stackdist.rs crates/profile/src/syscall_profile.rs crates/profile/src/thread_model.rs Cargo.toml

/root/repo/target/debug/deps/libditto_profile-89be4493a7161f96.rmeta: crates/profile/src/lib.rs crates/profile/src/hierarchy.rs crates/profile/src/instr_profile.rs crates/profile/src/metrics.rs crates/profile/src/profile.rs crates/profile/src/stackdist.rs crates/profile/src/syscall_profile.rs crates/profile/src/thread_model.rs Cargo.toml

crates/profile/src/lib.rs:
crates/profile/src/hierarchy.rs:
crates/profile/src/instr_profile.rs:
crates/profile/src/metrics.rs:
crates/profile/src/profile.rs:
crates/profile/src/stackdist.rs:
crates/profile/src/syscall_profile.rs:
crates/profile/src/thread_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
