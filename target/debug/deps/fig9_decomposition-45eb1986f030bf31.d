/root/repo/target/debug/deps/fig9_decomposition-45eb1986f030bf31.d: crates/bench/benches/fig9_decomposition.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_decomposition-45eb1986f030bf31.rmeta: crates/bench/benches/fig9_decomposition.rs Cargo.toml

crates/bench/benches/fig9_decomposition.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
