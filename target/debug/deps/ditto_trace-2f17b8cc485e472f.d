/root/repo/target/debug/deps/ditto_trace-2f17b8cc485e472f.d: crates/trace/src/lib.rs crates/trace/src/graph.rs crates/trace/src/span.rs

/root/repo/target/debug/deps/ditto_trace-2f17b8cc485e472f: crates/trace/src/lib.rs crates/trace/src/graph.rs crates/trace/src/span.rs

crates/trace/src/lib.rs:
crates/trace/src/graph.rs:
crates/trace/src/span.rs:
